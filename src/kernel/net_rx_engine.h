// The NET_RX softirq engine: vanilla and PRISM NAPI device polling.
//
// This class is the heart of the reproduction. One engine exists per CPU
// (it models that CPU's net_rx_action state) and implements both polling
// disciplines exactly as the paper presents them:
//
//  * Vanilla (paper Fig. 2): two poll lists per CPU. Each softirq
//    invocation splices the global list into a local one, polls each
//    device once (batch of 64), re-adds devices with remaining packets to
//    the *global* list, and re-raises itself while work remains. The
//    global/local split plus strict tail-enqueue is the scalability
//    optimization that causes the interleaved processing of Fig. 6a.
//
//  * PRISM (paper Fig. 7): a single poll list per CPU. Devices with
//    high-priority packets are inserted (or moved) to the *head* of the
//    list, devices with only low-priority packets to the tail. Combined
//    with the dual per-device queues polled high-first (QueueNapi), this
//    yields the streamlined order of Fig. 6b and batch-level preemption.
//
// Execution model: each net_rx_action invocation is decomposed into CPU
// chunks — one entry chunk plus one chunk per device poll — so that packet
// arrivals, IRQs, and application work interleave with the softirq at
// batch granularity, exactly the granularity at which the real kernel's
// state becomes externally visible.
//
// Starvation avoidance (ksoftirqd): when an invocation exhausts its
// packet budget (napi_budget) or its time budget (netdev_budget_usecs)
// with work remaining, the remainder is NOT re-raised as an immediate
// softirq. It is handed to a modeled ksoftirqd context that runs at task
// priority — new IRQ top-halves and freshly raised softirqs preempt it at
// chunk boundaries — which is how the kernel keeps a saturated receive
// path from starving userspace. Compiled out with -DPRISM_OVERLOAD=OFF
// (the engine then re-raises immediately, the pre-overload behaviour).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "kernel/cost_model.h"
#include "kernel/cpu.h"
#include "kernel/napi.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"
#include "trace/poll_trace.h"

namespace prism::kernel {

class OverloadGovernor;

/// Per-CPU NET_RX softirq processing engine.
class NetRxEngine {
 public:
  NetRxEngine(sim::Simulator& sim, Cpu& cpu, const CostModel& cost,
              NapiMode mode);

  NetRxEngine(const NetRxEngine&) = delete;
  NetRxEngine& operator=(const NetRxEngine&) = delete;

  /// Adds a device to this CPU's poll list and raises NET_RX if needed.
  /// `high` marks that the device just received a high-priority packet
  /// (PRISM head insertion; ignored in vanilla mode).
  void napi_schedule(NapiStruct& napi, bool high);

  /// Switches polling discipline. Only legal while the engine is idle
  /// (poll lists empty, no softirq in flight); throws std::logic_error
  /// otherwise.
  void set_mode(NapiMode mode);

  NapiMode mode() const noexcept { return mode_; }

  /// True when no softirq is pending or running, no ksoftirqd pass is
  /// queued, and the lists are empty.
  bool idle() const noexcept {
    return !softirq_pending_ && !in_softirq_ && !ksoftirqd_scheduled_ &&
           global_list_.empty() && local_list_.empty();
  }

  /// Attaches the host's overload governor (poll / squeeze / softirq-end
  /// notifications). nullptr detaches.
  void set_governor(OverloadGovernor* governor) noexcept {
    governor_ = governor;
  }

  /// Runtime switch for the ksoftirqd deferral; off restores the
  /// immediate re-raise. (The whole mechanism compiles out with
  /// -DPRISM_OVERLOAD=OFF regardless of this flag.)
  void set_ksoftirqd(bool on) noexcept { ksoftirqd_enabled_ = on; }

  /// Attaches a poll-order trace collector (may be nullptr to detach).
  void set_poll_trace(trace::PollTrace* trace) noexcept { trace_ = trace; }
  const trace::PollTrace* poll_trace() const noexcept { return trace_; }

  /// Attaches a timeline span tracer (nullptr detaches). Softirq entries
  /// and device polls are recorded as spans on `track` (one row per CPU
  /// in the exported trace; multi-host setups offset the track).
  void set_span_tracer(telemetry::SpanTracer* tracer, int track);

  /// Registers this engine's counters under `prefix` (e.g. "cpu0.").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

  // Counters for tests and diagnostics.
  std::uint64_t softirq_invocations() const noexcept { return softirqs_; }
  std::uint64_t polls() const noexcept { return polls_; }
  std::uint64_t packets_processed() const noexcept { return packets_; }
  /// Softirq returns forced by budget exhaustion with work remaining —
  /// the kernel's softnet_stat time_squeeze column (packet budget and
  /// time budget combined, as the kernel counts it).
  std::uint64_t time_squeezes() const noexcept { return time_squeezes_; }
  /// time_squeezes split by cause: packet budget (napi_budget) hit.
  std::uint64_t budget_squeezes() const noexcept {
    return budget_squeezes_;
  }
  /// time_squeezes split by cause: time budget (netdev_budget_usecs) hit
  /// before the packet budget.
  std::uint64_t time_budget_squeezes() const noexcept {
    return time_budget_squeezes_;
  }
  /// Squeezed invocations whose remainder was handed to ksoftirqd.
  std::uint64_t ksoftirqd_deferrals() const noexcept {
    return ksoftirqd_deferrals_;
  }
  /// net_rx_action passes actually run in ksoftirqd context.
  std::uint64_t ksoftirqd_runs() const noexcept { return ksoftirqd_runs_; }
  /// True while the current softirq pass runs in ksoftirqd context.
  bool in_ksoftirqd() const noexcept { return ksoftirqd_ctx_; }
  /// Devices put back on the poll list with packets still pending.
  std::uint64_t requeues() const noexcept { return requeues_; }
  /// PRISM head insertions/moves (batch-level preemptions).
  std::uint64_t head_inserts() const noexcept { return head_inserts_; }

 private:
  void raise_softirq();
  void schedule_ksoftirqd();
  sim::Duration ksoftirqd_chunk();
  sim::Duration entry_chunk();
  sim::Duration poll_chunk();
  void finish_softirq(bool squeezed);
  void trace_poll(NapiStruct* dev, int processed);

  sim::Simulator& sim_;
  Cpu& cpu_;
  const CostModel& cost_;
  NapiMode mode_;

  /// Vanilla: the per-CPU global POLL_LIST; PRISM: the single poll list.
  std::list<NapiStruct*> global_list_;
  /// Vanilla only: the softirq-local list net_rx_action works on.
  std::list<NapiStruct*> local_list_;

  bool softirq_pending_ = false;
  bool in_softirq_ = false;
  int budget_ = 0;
  /// Instant the running net_rx_action pass started (time-budget base).
  sim::Time softirq_started_ = 0;
  /// The current pass runs in ksoftirqd (task-priority) context.
  bool ksoftirqd_ctx_ = false;
  /// A ksoftirqd pass is queued on the CPU's task queue.
  bool ksoftirqd_scheduled_ = false;
  bool ksoftirqd_enabled_ = true;
  OverloadGovernor* governor_ = nullptr;

  trace::PollTrace* trace_ = nullptr;
  std::vector<trace::PollTrace::NameId> trace_scratch_;
  telemetry::SpanTracer* tracer_ = nullptr;
  int track_ = 0;
  telemetry::SpanTracer::NameId softirq_span_name_ = 0;
  std::uint64_t softirqs_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t time_squeezes_ = 0;
  std::uint64_t budget_squeezes_ = 0;
  std::uint64_t time_budget_squeezes_ = 0;
  std::uint64_t ksoftirqd_deferrals_ = 0;
  std::uint64_t ksoftirqd_runs_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t head_inserts_ = 0;
  telemetry::Counter* t_softirqs_ = &telemetry::Counter::sink();
  telemetry::Counter* t_polls_ = &telemetry::Counter::sink();
  telemetry::Counter* t_packets_ = &telemetry::Counter::sink();
  telemetry::Counter* t_time_squeeze_ = &telemetry::Counter::sink();
  telemetry::Counter* t_budget_squeeze_ = &telemetry::Counter::sink();
  telemetry::Counter* t_time_budget_squeeze_ = &telemetry::Counter::sink();
  telemetry::Counter* t_ksoftirqd_runs_ = &telemetry::Counter::sink();
  telemetry::Counter* t_requeues_ = &telemetry::Counter::sink();
  telemetry::Counter* t_head_inserts_ = &telemetry::Counter::sink();
};

}  // namespace prism::kernel
