// Socket buffer — the packet metadata structure of the simulated stack.
//
// Mirrors the kernel's sk_buff role: one Skb travels through every stage of
// the reception pipeline, carrying the packet bytes plus the metadata PRISM
// adds (the priority bit assigned once at stage-1 skb allocation, paper
// §IV-A) and the per-stage timestamps the latency analysis uses.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace prism::overlay {
class Netns;
}

namespace prism::kernel {

/// Life-cycle timestamps of one packet through the reception pipeline.
/// A value of -1 means "stage not traversed".
///
/// The *_start/_done pairs bracket each stage's service time; the gaps
/// between a stage's `done` and the next stage's `start` are queue waits.
/// Because the stamps are consecutive instants of one journey, the
/// traversed segments telescope: they sum exactly to
/// socket_enqueue - nic_rx, which is what lets the latency ledger
/// (telemetry/latency.h) attribute end-to-end latency per stage without
/// residue.
struct SkbTimestamps {
  sim::Time nic_rx = -1;       ///< frame landed in the NIC ring (DMA)
  sim::Time stage1_start = -1; ///< NIC driver poll dequeued the frame
  sim::Time stage1_done = -1;  ///< NIC driver processing finished
  sim::Time stage2_start = -1; ///< bridge stage began serving the skb
  sim::Time stage2_done = -1;  ///< bridge processing finished
  sim::Time stage3_start = -1; ///< backlog/veth stage began serving
  sim::Time stage3_done = -1;  ///< backlog/veth processing finished
  sim::Time flowcache_done = -1;  ///< flow-cache fast path applied the
                                  ///< cached transform (stages 2-3 skipped)
  sim::Time socket_enqueue = -1;  ///< enqueued to the socket buffer
};

/// Simulated sk_buff.
struct Skb {
  net::PacketBuf buf;

  /// PRISM's addition to sk_buff: priority determined once, at skb
  /// allocation in the physical driver, from the high-priority flow
  /// database (paper §IV-A). 0 = best-effort; higher values are more
  /// urgent. The published design uses two levels; this implementation
  /// generalizes to kNumPriorityLevels (the paper's §VII-3 future work).
  int priority = 0;

  /// Convenience: any non-best-effort level.
  bool high_priority() const noexcept { return priority > 0; }

  /// Number of wire frames this skb represents (>1 after GRO merge).
  int segments = 1;

  /// Frames GRO-merged behind `buf` (same flow, in order). Later stages
  /// charge their per-skb cost once for the whole chain — the GRO win.
  std::vector<net::PacketBuf> gro_chain;

  /// Destination namespace, resolved by the bridge's FDB lookup (stage 2)
  /// for overlay packets.
  overlay::Netns* dst_netns = nullptr;

  /// Reception pipeline stage the skb is queued for (1-based; 0 = not yet
  /// in the pipeline).
  int stage = 0;

  /// Parse of the current `buf` bytes, cached where the packet enters the
  /// pipeline so later stages (bridge FDB lookup, socket delivery) reuse
  /// it instead of re-parsing. The spans point into `buf`'s storage and
  /// are invalidated by any mutation of `buf`.
  std::optional<net::ParsedFrame> parsed;

  /// Flight-recorder sampling decision, made once at stage-1 dequeue so
  /// later stages test one bool instead of re-hashing the flow.
  bool traced = false;

  /// Priority class as the recorder sees it: equals `priority` in Prism
  /// modes; in vanilla mode (which never classifies, priority stays 0)
  /// the recorder classifies on the side so inversions suffered by
  /// would-be-high flows are attributable. Never consulted by the
  /// datapath — observability only.
  std::int8_t observed_class = 0;

  /// Priority class at the head of the stage queue when this skb was
  /// enqueued (-1 = queue was empty). Replayed at dequeue so the
  /// inversion detector knows what the skb waited behind.
  std::int8_t head_class_at_enqueue = -1;

  /// Overlay flow-cache generation observed when this packet was
  /// classified at stage 1. A stage-2 cache fill records this value (not
  /// the fill-time generation), so a mutation landing between
  /// classification and fill leaves the entry already stale instead of
  /// poisoning the cache. 0 when the cache is not in play.
  std::uint64_t flowcache_gen = 0;

  SkbTimestamps ts;
};

/// Latest completed-stage stamp of `skb` — the instant it was handed to
/// whatever queue it currently sits in. Used by the flight recorder to
/// date enqueues and measure queue waits without widening the enqueue
/// API with a time parameter.
inline sim::Time last_done_stamp(const Skb& skb) noexcept {
  if (skb.ts.stage2_done >= 0) return skb.ts.stage2_done;
  if (skb.ts.stage1_done >= 0) return skb.ts.stage1_done;
  if (skb.ts.nic_rx >= 0) return skb.ts.nic_rx;
  return 0;
}

/// Deleter that hands the Skb back to the process-global SkbPool
/// (kernel/skb_pool.h) instead of freeing it. Stateless, so SkbPtr can be
/// re-materialised from a raw pointer (`SkbPtr(raw)`) after a release().
struct SkbRecycler {
  void operator()(Skb* skb) const noexcept;
};

/// Owning handle to an Skb; dropping it recycles the skb (and the packet
/// storage it carries) for the next packet.
using SkbPtr = std::unique_ptr<Skb, SkbRecycler>;

/// Allocates an skb from the slab pool — the mandatory allocation path
/// (the pool's hit-rate counters are how benchmarks prove the hot loop is
/// allocation-free).
SkbPtr alloc_skb();

}  // namespace prism::kernel
