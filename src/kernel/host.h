// A simulated machine: CPUs, NIC, kernel stack, namespaces, containers.
//
// Host is the assembly point of the reproduction: it owns the per-CPU
// softirq machinery (engine + stage transitions + backlog), the NIC's RSS
// queues and their stage-1 NAPIs, the overlay bridges, the container
// namespaces with their VXLAN egress, and PRISM's priority database and
// proc control interface. The testbed harness creates two of these and
// connects them with a Wire, mirroring the paper's two-machine setup.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "kernel/cost_model.h"
#include "kernel/cpu.h"
#include "kernel/napi.h"
#include "kernel/net_rx_engine.h"
#include "kernel/nic_napi.h"
#include "kernel/overload.h"
#include "kernel/protocol.h"
#include "kernel/socket.h"
#include "kernel/softnet.h"
#include "kernel/stage_transition.h"
#include "kernel/tcp.h"
#include "net/ip.h"
#include "net/mac.h"
#include "nic/nic.h"
#include "overlay/bridge.h"
#include "overlay/flow_cache.h"
#include "overlay/netns.h"
#include "prism/priority_db.h"
#include "prism/proc_interface.h"
#include "sim/simulator.h"
#include "telemetry/snapshot.h"
#include "telemetry/telemetry.h"

namespace prism::kernel {

/// Static configuration of one host.
struct HostConfig {
  std::string name = "host";
  net::Ipv4Addr ip;
  net::MacAddr mac;  ///< zero -> derived from ip
  int num_cpus = 4;
  /// NIC RSS queues. The paper's server directs all network processing to
  /// a single core (one queue -> CPU 0); the client spreads flows.
  int nic_queues = 1;
  /// queue i -> CPU. Empty: queue i handled by CPU i % num_cpus.
  std::vector<int> queue_cpu_map;
  /// Receive Packet Steering at the bridge->veth (netif_rx) boundary:
  /// flows hash across these CPUs. Empty (default, and the paper's
  /// single-core server setup) keeps each packet on its RX CPU.
  std::vector<int> rps_cpus;
  NapiMode mode = NapiMode::kVanilla;
  CostModel cost;
  std::size_t nic_ring_capacity = 4096;
  /// NIC interrupt moderation (default off; the testbed enables it to
  /// match the ConnectX-5's adaptive behaviour).
  nic::CoalesceConfig coalesce;
  /// Fault injection (default: all rates zero, i.e. inactive). The drop
  /// ledger accounts natural drops even when no fault is armed.
  fault::FaultConfig faults;
  /// Per-queue backlog limit (the kernel's netdev_max_backlog sysctl,
  /// default 1000). Applied to every per-CPU backlog napi.
  std::size_t netdev_max_backlog = 1000;
  /// Overload control: flow_limit admission, watermarks, watchdog,
  /// ksoftirqd deferral (kernel/overload.h).
  OverloadConfig overload;
  /// Overlay flow cache (ONCache-style stage-1 fast path,
  /// overlay/flow_cache.h): opt-in per host. Compile-out with
  /// -DPRISM_FLOWCACHE=OFF.
  bool flow_cache = false;
  /// Flows the cache retains (LRU eviction beyond this); 0 selects
  /// overlay::FlowCache::kDefaultCapacity.
  std::size_t flow_cache_capacity = 0;
};

/// One simulated machine.
class Host {
 public:
  Host(sim::Simulator& sim, HostConfig config);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  // ------------------------------------------------------------ identity
  const std::string& name() const noexcept { return cfg_.name; }
  net::Ipv4Addr ip() const noexcept { return cfg_.ip; }
  net::MacAddr mac() const noexcept { return cfg_.mac; }
  const CostModel& cost() const noexcept { return cfg_.cost; }

  // ------------------------------------------------------------ hardware
  nic::Nic& nic() noexcept { return *nic_; }
  Cpu& cpu(int i) { return *per_cpu_[static_cast<std::size_t>(i)]->cpu; }
  int num_cpus() const noexcept { return cfg_.num_cpus; }
  NetRxEngine& engine(int i) {
    return *per_cpu_[static_cast<std::size_t>(i)]->engine;
  }
  /// CPU that queue 0 interrupts — the paper's "packet processing core".
  int default_rx_cpu() const noexcept { return queue_cpu_map_[0]; }

  // --------------------------------------------------------------- faults
  /// The host's fault layer: the seeded injection plan plus the drop
  /// ledger every drop path reports into (proc: "prism/faults").
  fault::FaultLayer& faults() noexcept { return faults_; }
  const fault::FaultLayer& faults() const noexcept { return faults_; }
  /// Re-arms the fault plan (reseeds the RNG, zeroes injection counters).
  void configure_faults(const fault::FaultConfig& cfg) {
    faults_.plan.configure(cfg);
  }

  // ------------------------------------------------------------- overload
  /// The host's overload governor (state machine + livelock watchdog;
  /// proc: "prism/overload").
  OverloadGovernor& governor() noexcept { return *governor_; }
  const OverloadGovernor& governor() const noexcept { return *governor_; }
  /// The admission policy of CPU i's backlog (flow_limit / shed counts).
  const BacklogAdmission& admission(int i) const {
    return *per_cpu_[static_cast<std::size_t>(i)]->admission;
  }

  // ----------------------------------------------------------- flow cache
  /// The per-host overlay flow cache. Always constructed (so counters and
  /// tests have a stable surface); the datapath consults it only when
  /// HostConfig::flow_cache enabled it.
  overlay::FlowCache& flow_cache() noexcept { return *flow_cache_; }
  const overlay::FlowCache& flow_cache() const noexcept {
    return *flow_cache_;
  }

  // --------------------------------------------------------------- PRISM
  prism::PriorityDb& priority_db() noexcept { return priority_db_; }
  prism::ProcInterface& proc() noexcept { return *proc_; }
  /// Switches every CPU's engine; all must be idle.
  void set_mode(NapiMode mode);
  NapiMode mode() const noexcept;

  // ---------------------------------------------------------- namespaces
  overlay::Netns& root_ns() noexcept { return *root_ns_; }

  /// Creates (or returns) the overlay bridge for `vni`.
  overlay::Bridge& bridge(std::uint32_t vni);

  /// The `vni` bridge's forwarding database (creates the bridge on first
  /// use). Mutations through it — add, remap, remove — bump the flow
  /// cache's generation via the installed hook, so cached transforms
  /// resolved under the old table are never replayed.
  overlay::Fdb& fdb(std::uint32_t vni);

  /// Creates a container attached to the `vni` bridge. The container MAC
  /// is auto-assigned; the FDB entry is installed.
  overlay::Netns& add_container(const std::string& name, net::Ipv4Addr ip,
                                std::uint32_t vni);

  /// Begins container teardown: the namespace enters Draining (new
  /// deliveries drop as counted kDeadNetns, sends are refused), the FDB
  /// unlearns its MAC (bumping the flow-cache generation), and after
  /// `drain` the namespace goes Dead — bound sockets close, queued
  /// datagram storage recycles. The Netns object is retained as a
  /// tombstone so stale pointers observe the state instead of dangling.
  /// No-op for the root namespace or an already-stopped container.
  void stop_container(overlay::Netns& ns, sim::Duration drain = 0);

  /// Creates a fresh incarnation of a torn-down container, reusing its
  /// name/IP/MAC (peers' ARP entries and remote VTEP routes stay valid)
  /// and relearning the FDB entry. `old_ns` must be a container; if its
  /// drain hasn't finished the teardown is completed first. Prefer
  /// OverlayNetwork::restart_container, which also re-wires neighbours.
  overlay::Netns& restart_container(overlay::Netns& old_ns);

  /// Creates a container with an explicit identity (used by container
  /// migration, where the incarnation on the destination host must keep
  /// the source's IP and MAC). The FDB entry is installed; neighbour
  /// wiring is the caller's job.
  overlay::Netns& adopt_container(const std::string& name,
                                  net::Ipv4Addr ip, net::MacAddr mac,
                                  std::uint32_t vni);

  /// Declares that container `mac` of overlay `vni` lives behind the
  /// remote VTEP (`host_ip`, `host_mac`): the container egress
  /// encapsulates frames for it accordingly.
  void add_overlay_route(std::uint32_t vni, net::MacAddr container_mac,
                         net::Ipv4Addr host_ip, net::MacAddr host_mac);

  /// Withdraws a VTEP route (e.g. the container migrated onto this host):
  /// its traffic falls back to local bridge delivery. Returns false when
  /// no such route existed. Invalidates the flow cache on change.
  bool remove_overlay_route(std::uint32_t vni, net::MacAddr container_mac);

  /// Static ARP entry for the root namespace's L2 domain.
  void add_neighbor(net::Ipv4Addr ip, net::MacAddr mac) {
    root_ns_->add_neighbor(ip, mac);
  }

  // -------------------------------------------------------------- sockets
  /// Binds a UDP socket (owned by the host) in `ns`.
  UdpSocket& udp_bind(overlay::Netns& ns, std::uint16_t port,
                      std::size_t capacity = 4096);

  /// Sends one UDP datagram from `ns`, charging syscall/copy/egress costs
  /// to `cpu`. `on_sent` (optional) fires when the send syscall
  /// completes. The payload is copied into the frame before this call
  /// returns, so the caller's buffer may be reused immediately. Throws
  /// std::invalid_argument if the payload exceeds the path MTU (UDP
  /// fragmentation is out of scope; see DESIGN.md).
  void udp_send(overlay::Netns& ns, Cpu& cpu, std::uint16_t src_port,
                net::Ipv4Addr dst_ip, std::uint16_t dst_port,
                std::span<const std::uint8_t> payload,
                std::function<void()> on_sent = {});

  /// Creates (and registers) an established-TCP endpoint in `ns`.
  /// `mss == 0` selects the path default (1400 for containers, 1448 for
  /// the host path).
  TcpEndpoint& tcp_create(overlay::Netns& ns, net::Ipv4Addr remote_ip,
                          std::uint16_t local_port,
                          std::uint16_t remote_port, std::size_t mss = 0);

  /// Maximum UDP payload for sockets in `ns`.
  std::size_t max_udp_payload(const overlay::Netns& ns) const noexcept;

  // ---------------------------------------------------------- telemetry
  SocketDeliverer& deliverer() noexcept { return *deliverer_; }
  void set_poll_trace(int cpu, trace::PollTrace* trace) {
    engine(cpu).set_poll_trace(trace);
  }
  NicNapi& nic_napi(int queue) {
    return *nic_napis_[static_cast<std::size_t>(queue)];
  }

  /// The host's metrics registry + span tracer. Every component's
  /// counters are registered at construction under stable prefixes
  /// ("nic.q0.", "cpu0.", "overlay.br<vni>.", "sockets."); the hot path
  /// only increments the resolved handles.
  telemetry::Telemetry& telemetry() noexcept { return telemetry_; }
  telemetry::Registry& metrics() noexcept { return telemetry_.registry; }

  /// Per-stage latency attribution ledger (proc: "prism/latency"). Fed
  /// by the socket deliverer on every completed journey.
  telemetry::LatencyLedger& latency_ledger() noexcept {
    return telemetry_.latency;
  }
  /// Bounded per-flow accounting table (proc: "prism/flows").
  telemetry::FlowTable& flow_table() noexcept { return telemetry_.flows; }

  /// Flow-path flight recorder: sampled per-packet lifecycle rings fed
  /// from every stamp point (armed by default at 1-in-64 sampling with
  /// high classes pinned).
  telemetry::FlightRecorder& flight_recorder() noexcept {
    return telemetry_.recorder;
  }
  /// Streaming anomaly detectors (proc: "prism/anomalies"). Inversion
  /// detection is armed by default; SLO/drop-burst/flap detectors arm
  /// via anomalies().arm(config).
  telemetry::AnomalyBank& anomalies() noexcept {
    return telemetry_.anomalies;
  }

  /// Attaches a span tracer to every CPU's engine and the NIC IRQ lines.
  /// CPU i records on track `track_base + i` (labelled "<host>.cpu<i>");
  /// pass distinct bases when two hosts share one tracer. nullptr
  /// detaches.
  void set_span_tracer(telemetry::SpanTracer* tracer, int track_base = 0);

  /// Per-CPU softnet_stat rows assembled from live component counters.
  std::vector<telemetry::SoftnetRow> softnet_rows();
  /// Per-device rx/tx rows (eth, per-VNI bridge, veth aggregate).
  std::vector<telemetry::NetDevRow> net_dev_rows();
  /// /proc/net/softnet_stat rendering (also readable via
  /// proc().read("net/softnet_stat")).
  std::string softnet_stat();
  /// /proc/net/dev-like rendering (proc().read("net/dev")).
  std::string net_dev();

 private:
  struct PerCpu {
    std::unique_ptr<Cpu> cpu;
    std::unique_ptr<NetRxEngine> engine;
    std::unique_ptr<StageTransition> transition;
    std::unique_ptr<BacklogStage> backlog_stage;
    std::unique_ptr<QueueNapi> backlog;
    std::unique_ptr<BacklogAdmission> admission;
  };

  struct BridgeBundle {
    std::unique_ptr<overlay::Fdb> fdb;
    std::unique_ptr<overlay::Bridge> bridge;
    /// Remote containers: MAC -> VTEP endpoint.
    struct Vtep {
      net::Ipv4Addr host_ip;
      net::MacAddr host_mac;
    };
    std::map<net::MacAddr, Vtep> routes;
  };

  void container_egress(std::uint32_t vni, net::PacketBuf frame);
  void deliver_local(BridgeBundle& bundle, net::PacketBuf frame);
  void finish_teardown(overlay::Netns& ns);

  sim::Simulator& sim_;
  HostConfig cfg_;
  /// Declared before every component so the registry (whose counters the
  /// components hold resolved pointers into) outlives them on teardown.
  telemetry::Telemetry telemetry_;
  /// Declared right after the telemetry (its counters live in the
  /// registry) and before every pipeline component that holds a pointer
  /// into it, so it outlives them all on teardown.
  fault::FaultLayer faults_;
  /// Declared before the NIC and the per-CPU machinery: their IRQ
  /// handlers and engines hold a pointer into it, so it must outlive them
  /// on teardown.
  std::unique_ptr<OverloadGovernor> governor_;
  /// Declared before the NIC NAPIs and bridges, which hold a pointer into
  /// it, so it outlives them on teardown.
  std::unique_ptr<overlay::FlowCache> flow_cache_;
  telemetry::SpanTracer* tracer_ = nullptr;
  int track_base_ = 0;
  telemetry::SpanTracer::NameId irq_name_ = 0;
  std::vector<int> queue_cpu_map_;
  std::unique_ptr<nic::Nic> nic_;
  std::vector<std::unique_ptr<PerCpu>> per_cpu_;
  std::unique_ptr<SocketDeliverer> deliverer_;
  std::vector<std::unique_ptr<NicNapi>> nic_napis_;
  std::unique_ptr<overlay::Netns> root_ns_;
  std::map<std::uint32_t, BridgeBundle> bridges_;
  std::vector<std::unique_ptr<overlay::Netns>> containers_;
  std::vector<std::unique_ptr<UdpSocket>> udp_sockets_;
  std::vector<std::unique_ptr<TcpEndpoint>> tcp_endpoints_;
  prism::PriorityDb priority_db_;
  std::unique_ptr<prism::ProcInterface> proc_;
  std::uint32_t mac_counter_ = 0;
};

}  // namespace prism::kernel
