// Stage transition functions.
//
// In the kernel, gro_cells_receive (bridge) and netif_rx (veth/backlog)
// move a packet from one pipeline stage into the input queue of the next
// device and schedule that device's NAPI. PRISM modifies exactly these
// functions (paper §IV-C):
//
//  * PRISM-batch: high-priority packets go to the next device's
//    high-priority queue and the device is added (or moved) to the *head*
//    of the poll list — batch-level preemption.
//  * PRISM-sync: high-priority packets never enter the next queue at all;
//    the next stage's processing function is invoked synchronously in the
//    current softirq context (run-to-completion, the equivalent of calling
//    netif_receive_skb directly).
//
// Low-priority packets always take the vanilla path: low queue, tail of
// the poll list.
#pragma once

#include "kernel/cost_model.h"
#include "kernel/napi.h"
#include "kernel/net_rx_engine.h"

namespace prism::kernel {

/// Mode-aware packet handoff between pipeline stages.
class StageTransition {
 public:
  StageTransition(NetRxEngine& engine, const CostModel& cost)
      : engine_(engine), cost_(cost) {}

  /// The processing mode of the CPU this transition enqueues on.
  NapiMode mode() const noexcept { return engine_.mode(); }

  /// Hands `skb` (whose processing at the current stage finished at
  /// instant `at`) to the stage behind `next`. `cost_multiplier` is the
  /// cache-pressure factor of the enclosing poll, forwarded so inline
  /// (PRISM-sync) stages run in the same cache environment. Returns the
  /// *inline* cost chained onto the current packet's processing —
  /// non-zero only for a PRISM-sync high-priority packet, whose remaining
  /// stages execute synchronously.
  sim::Duration transit(SkbPtr skb, sim::Time at, QueueNapi& next,
                        double cost_multiplier = 1.0) {
    const int level = skb->priority;
    switch (engine_.mode()) {
      case NapiMode::kVanilla:
        break;  // vanilla ignores priority entirely
      case NapiMode::kPrismBatch:
      case NapiMode::kPrismQueues:
        if (level > 0) {
          if (next.enqueue(std::move(skb), level)) {
            // The engine ignores the head-insertion hint in the
            // queues-only ablation mode.
            engine_.napi_schedule(next, /*high=*/true);
          }
          return 0;
        }
        break;
      case NapiMode::kPrismSync:
        if (level > 0) {
          // Run-to-completion: the packet is processed by the next stage
          // in the same context; it never touches a queue, and the next
          // device is never added to the poll list on its behalf
          // (paper §III-B1).
          const sim::Duration hop = cost_.sync_transition;
          return hop + next.stage().process_one(std::move(skb), at + hop,
                                                cost_multiplier);
        }
        break;
    }
    if (next.enqueue(std::move(skb), /*level=*/0)) {
      engine_.napi_schedule(next, /*high=*/false);
    }
    return 0;
  }

 private:
  NetRxEngine& engine_;
  const CostModel& cost_;
};

}  // namespace prism::kernel
