#include "kernel/skb_pool.h"

namespace prism::kernel {

SkbPool& SkbPool::instance() noexcept {
  // Intentionally leaked, same rationale as sim::BufferPool::instance().
  static SkbPool* pool = new SkbPool();
  return *pool;
}

SkbPool::Handle SkbPool::acquire() { return Handle(pool_.acquire()); }

void SkbPool::release(Skb* skb) {
  // Scrub back to the default-constructed state. The PacketBuf assignments
  // recycle the byte storage into the BufferPool; gro_chain keeps its
  // vector capacity (clear, not shrink) so re-merging costs nothing.
  skb->buf = net::PacketBuf{};
  skb->priority = 0;
  skb->segments = 1;
  skb->gro_chain.clear();
  skb->dst_netns = nullptr;
  skb->stage = 0;
  skb->parsed.reset();
  skb->ts = SkbTimestamps{};
  pool_.release(skb);
}

void SkbRecycler::operator()(Skb* skb) const noexcept {
  if (skb != nullptr) SkbPool::instance().release(skb);
}

SkbPtr alloc_skb() { return SkbPool::instance().acquire(); }

}  // namespace prism::kernel
