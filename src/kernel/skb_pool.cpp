#include "kernel/skb_pool.h"

#include <thread>

namespace prism::kernel {

namespace {

const std::thread::id kMainThread = std::this_thread::get_id();

/// Same per-thread lifecycle as sim::BufferPool::instance(): lane workers
/// free their pool on thread exit, the main thread's is intentionally
/// leaked so static-storage SkbPtrs may release during shutdown.
struct TlsSkbPool {
  SkbPool* pool = new SkbPool();
  ~TlsSkbPool() {
    if (std::this_thread::get_id() != kMainThread) delete pool;
  }
};

}  // namespace

SkbPool& SkbPool::instance() noexcept {
  // One slab per thread, so each parallel lane allocates and recycles
  // skbs lock-free. Skbs never cross lanes (only raw frames travel the
  // wire), so every skb is released to the pool that issued it.
  thread_local TlsSkbPool tls;
  return *tls.pool;
}

SkbPool::Handle SkbPool::acquire() { return Handle(pool_.acquire()); }

void SkbPool::release(Skb* skb) {
  // Scrub back to the default-constructed state. The PacketBuf assignments
  // recycle the byte storage into the BufferPool; gro_chain keeps its
  // vector capacity (clear, not shrink) so re-merging costs nothing.
  skb->buf = net::PacketBuf{};
  skb->priority = 0;
  skb->segments = 1;
  skb->gro_chain.clear();
  skb->dst_netns = nullptr;
  skb->stage = 0;
  skb->parsed.reset();
  skb->traced = false;
  skb->observed_class = 0;
  skb->head_class_at_enqueue = -1;
  skb->flowcache_gen = 0;
  skb->ts = SkbTimestamps{};
  pool_.release(skb);
}

void SkbRecycler::operator()(Skb* skb) const noexcept {
  if (skb != nullptr) SkbPool::instance().release(skb);
}

SkbPtr alloc_skb() { return SkbPool::instance().acquire(); }

}  // namespace prism::kernel
