// NAPI structures: napi_struct, packet-processing stages, and the generic
// queue-backed poll function.
//
// The simulated reception pipeline is built from PacketStages (the
// per-packet protocol work of one device) wrapped in NapiStructs (the
// pollable queue + poll function the kernel's softirq loop operates on),
// mirroring the kernel's napi_struct / poll-callback split.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <string>

#include "fault/fault.h"
#include "kernel/cost_model.h"
#include "kernel/skb.h"
#include "net/flow.h"
#include "sim/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

#ifndef PRISM_OVERLOAD_ENABLED
#define PRISM_OVERLOAD_ENABLED 1
#endif

namespace prism::kernel {

/// Number of packet priority levels. Level 0 is best-effort (vanilla's
/// only level); levels 1..kNumPriorityLevels-1 are increasingly urgent.
/// The paper's prototype has two levels and names finer-grained control
/// as future work (§VII-3).
constexpr int kNumPriorityLevels = 4;

/// Packet-processing regime of a host (paper §III).
enum class NapiMode {
  kVanilla,     ///< stock two-list NAPI, FCFS, no priorities (Fig. 2)
  kPrismBatch,  ///< single list, dual queues, batch-level preemption
  kPrismSync,   ///< as batch, plus run-to-completion for high-priority
  /// Ablation mode: PRISM's dual per-device queues (high polled first)
  /// WITHOUT poll-list head insertion. Isolates how much of PRISM-batch's
  /// gain comes from each of its two ingredients (paper §III-B2).
  kPrismQueues,
};

/// Human-readable mode name ("vanilla", "prism-batch", "prism-sync").
const char* to_string(NapiMode mode) noexcept;

/// The per-packet protocol work of one pipeline stage (NIC driver, bridge,
/// backlog). Implementations perform the packet's side effects — stage
/// transition into the next device or final socket delivery — and return
/// the processing cost.
class PacketStage {
 public:
  virtual ~PacketStage() = default;

  /// Processes one skb at simulated instant `at` (the instant within the
  /// enclosing poll chunk at which this packet's processing begins).
  /// `cost_multiplier` is the cache-pressure factor of the enclosing poll
  /// (CostModel::depth_multiplier); implementations scale their own
  /// per-packet cost by it. Returns the simulated cost of this packet at
  /// this stage, including any inline work a PRISM-sync transition chains
  /// onto it.
  virtual sim::Duration process_one(SkbPtr skb, sim::Time at,
                                    double cost_multiplier) = 0;

  virtual const std::string& name() const = 0;
};

/// Admission decision for one backlog enqueue (kernel/overload.h
/// implements this; the interface lives here so NapiStruct can consult it
/// without an include cycle).
class AdmissionPolicy {
 public:
  enum class Verdict {
    kAdmit,      ///< enqueue normally
    kFlowLimit,  ///< shed: dominant flow on a congested queue (flow_limit)
    kShed,       ///< shed: low-priority packet inside the reserved headroom
  };

  virtual ~AdmissionPolicy() = default;

  /// Decides the fate of `skb` arriving at priority `level` on a queue
  /// currently `qlen` deep (all levels) with per-queue limit `limit`.
  virtual Verdict admit(const Skb& skb, int level, std::size_t qlen,
                        std::size_t limit) = 0;
};

/// Result of one napi_poll invocation.
struct PollOutcome {
  int processed = 0;        ///< packets consumed from the device queue
  sim::Duration cost = 0;   ///< total simulated cost of the poll
  bool has_more = false;    ///< device still has pending packets
};

/// Simulated napi_struct: the unit the NAPI poll list holds.
///
/// Owns the device's input packet queues. PRISM extends every device with
/// a second, high-priority queue (paper §IV-B); in vanilla mode the high
/// queue is simply never used.
class NapiStruct {
 public:
  explicit NapiStruct(std::string name) : name_(std::move(name)) {}
  virtual ~NapiStruct() = default;

  NapiStruct(const NapiStruct&) = delete;
  NapiStruct& operator=(const NapiStruct&) = delete;

  /// Processes up to `batch` packets starting at instant `start`.
  virtual PollOutcome poll(int batch, sim::Time start) = 0;

  /// Any packets pending? (NIC-backed napis probe their ring instead.)
  virtual bool has_pending() const { return highest_pending() >= 0; }

  /// Any high-priority (level >= 1) packets pending?
  virtual bool has_high_pending() const { return highest_pending() >= 1; }

  /// napi_complete: the device was drained and leaves the poll list.
  /// NIC-backed napis re-enable their interrupt here.
  virtual void on_complete() {}

  const std::string& name() const noexcept { return name_; }

  /// Enqueues at priority `level` (clamped to the valid range),
  /// enforcing the per-queue length limit (netdev_max_backlog): returns
  /// false and counts a drop when that queue is full, as netif_rx does.
  bool enqueue(SkbPtr skb, int level) {
    level = clamp_level(level);
#if PRISM_OVERLOAD_ENABLED
    if (admission_ != nullptr) {
      const auto verdict =
          admission_->admit(*skb, level, pending_total(), queue_limit);
      if (verdict != AdmissionPolicy::Verdict::kAdmit) {
        ++(level > 0 ? high_dropped_ : low_dropped_);
        t_dropped_->inc();
        const auto reason = verdict == AdmissionPolicy::Verdict::kFlowLimit
                                ? fault::DropReason::kFlowLimit
                                : fault::DropReason::kOverloadShed;
        if (faults_ != nullptr) {
          faults_->drops.record(reason, level);
        }
        record_traced_drop(*skb, reason);
        return false;
      }
    }
#endif
    auto& q = queues[static_cast<std::size_t>(level)];
    bool full = q.size() >= queue_limit;
#if PRISM_FAULTS_ENABLED
    if (!full && faults_ != nullptr && faults_->plan.force_backlog_full()) {
      full = true;
    }
#endif
    if (full) {
      ++(level > 0 ? high_dropped_ : low_dropped_);
      t_dropped_->inc();
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kBacklogFull, level);
      }
      record_traced_drop(*skb, fault::DropReason::kBacklogFull);
      // Returning false destroys the caller's skb, recycling it (and its
      // buffer storage) through the pools.
      return false;
    }
#if PRISM_TELEMETRY_ENABLED
    if (recorder_ != nullptr && skb->traced && skb->parsed) {
      // Observability only: nothing here alters cost or scheduling.
      const int head = head_class();
      skb->head_class_at_enqueue = static_cast<std::int8_t>(head);
      recorder_->on_enqueue(net::flow_of(*skb->parsed), recorder_stage_,
                            skb->observed_class,
                            static_cast<int>(pending_total()) + 1, head,
                            last_done_stamp(*skb));
    }
#endif
    q.push_back(std::move(skb));
    t_enqueued_->inc();
    t_depth_->set(static_cast<std::int64_t>(q.size()));
    return true;
  }

  /// Attaches the host's flight recorder; `stage` labels this device's
  /// position in the pipeline (2 = bridge gro_cell, 3 = backlog/veth).
  /// Recording never alters the schedule — traced runs stay
  /// byte-identical to untraced ones in simulated time.
  void set_flight_recorder(telemetry::FlightRecorder* recorder,
                           int stage) noexcept {
    recorder_ = recorder;
    recorder_stage_ = stage;
  }

  /// Attaches the host's fault layer: backlog drops are attributed to the
  /// drop ledger, and the plan may force backlog-full episodes. nullptr
  /// detaches.
  void set_faults(fault::FaultLayer* faults) noexcept { faults_ = faults; }

  /// Attaches an admission policy consulted before every enqueue (the
  /// host wires BacklogAdmission to the per-CPU backlog napis). nullptr
  /// (default) admits everything. Compiled out with -DPRISM_OVERLOAD=OFF.
  void set_admission(AdmissionPolicy* admission) noexcept {
    admission_ = admission;
  }

  /// Binds this device's enqueue/drop counters and per-queue depth
  /// watermark under `prefix` (several devices may share a prefix for
  /// aggregate counting). Unbound devices count into the telemetry sink.
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_enqueued_ = &reg.counter(prefix + "enqueued");
    t_dropped_ = &reg.counter(prefix + "dropped");
    t_depth_ = &reg.gauge(prefix + "depth");
  }

  /// Packets currently queued across all priority levels (softnet
  /// backlog_len for backlog napis).
  std::size_t pending_total() const noexcept {
    std::size_t n = 0;
    for (const auto& q : queues) n += q.size();
    return n;
  }

  /// Highest priority level with packets pending; -1 when all empty.
  int highest_pending() const noexcept {
    for (int level = kNumPriorityLevels - 1; level >= 0; --level) {
      if (!queues[static_cast<std::size_t>(level)].empty()) return level;
    }
    return -1;
  }

  static int clamp_level(int level) noexcept {
    if (level < 0) return 0;
    if (level >= kNumPriorityLevels) return kNumPriorityLevels - 1;
    return level;
  }

  std::uint64_t low_dropped() const noexcept { return low_dropped_; }
  std::uint64_t high_dropped() const noexcept { return high_dropped_; }

  /// Per-level input packet queues. Vanilla uses level 0 only; the
  /// paper's two-level PRISM uses 0 and 1.
  std::array<std::deque<SkbPtr>, kNumPriorityLevels> queues;

  /// Back-compatible aliases matching the paper's terminology.
  std::deque<SkbPtr>& low_queue = queues[0];
  std::deque<SkbPtr>& high_queue = queues[1];

  /// Max packets per input queue (the kernel's netdev_max_backlog,
  /// default 1000). Every priority queue gets the same limit.
  std::size_t queue_limit = 1000;

  /// NAPI_STATE_SCHED: set while the device is in a poll list or being
  /// polled; cleared by napi_complete.
  bool scheduled = false;

 protected:
  /// Observed priority class of the packet that will be served next
  /// (-1 = all queues empty). In Prism modes this equals the highest
  /// non-empty level; in vanilla everything sits in queue 0, so the
  /// front skb's recorder-observed class is what a new arrival actually
  /// waits behind.
  int head_class() const noexcept {
    const int hp = highest_pending();
    if (hp < 0) return -1;
    const Skb& front = *queues[static_cast<std::size_t>(hp)].front();
    return front.observed_class > hp ? front.observed_class : hp;
  }

  void record_traced_drop(const Skb& skb, fault::DropReason reason) {
#if PRISM_TELEMETRY_ENABLED
    if (recorder_ != nullptr && skb.traced && skb.parsed) {
      recorder_->on_drop(net::flow_of(*skb.parsed), recorder_stage_,
                         skb.observed_class, static_cast<int>(reason),
                         last_done_stamp(skb));
    }
#else
    (void)skb;
    (void)reason;
#endif
  }

  telemetry::FlightRecorder* recorder_ = nullptr;
  int recorder_stage_ = 0;

 private:
  std::string name_;
  fault::FaultLayer* faults_ = nullptr;
  AdmissionPolicy* admission_ = nullptr;
  std::uint64_t low_dropped_ = 0;
  std::uint64_t high_dropped_ = 0;
  telemetry::Counter* t_enqueued_ = &telemetry::Counter::sink();
  telemetry::Counter* t_dropped_ = &telemetry::Counter::sink();
  telemetry::Gauge* t_depth_ = &telemetry::Gauge::sink();
};

/// Queue-backed napi used by the bridge's gro_cells and the per-CPU
/// backlog: implements the napi_poll logic of the paper's Fig. 7 (lines
/// 22-38) — if the high-priority queue is non-empty when the poll begins,
/// only a batch of high-priority packets is processed; otherwise a batch
/// from the low-priority queue, exactly like vanilla.
class QueueNapi final : public NapiStruct {
 public:
  QueueNapi(std::string name, PacketStage& stage, const CostModel& cost)
      : NapiStruct(std::move(name)), stage_(stage), cost_(cost) {}

  PollOutcome poll(int batch, sim::Time start) override;

  /// The protocol-processing stage behind this napi (used by PRISM-sync
  /// transitions to invoke the stage directly).
  PacketStage& stage() noexcept { return stage_; }

 private:
  PacketStage& stage_;
  const CostModel& cost_;
};

}  // namespace prism::kernel
