// Final protocol step: L3/L4 processing and socket delivery.
//
// Both the single-stage host path (inside the NIC driver poll) and the
// last overlay stage (the backlog/veth poll) end here: the frame's
// transport header selects a UDP socket or TCP endpoint in the destination
// namespace and the payload crosses into the socket buffer.
#pragma once

#include <cstdint>

#include "kernel/cost_model.h"
#include "kernel/skb.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "trace/packet_trace.h"

namespace prism::overlay {
class Netns;
}

namespace prism::telemetry {
class LatencyLedger;
class FlowTable;
class FlightRecorder;
class AnomalyBank;
}

namespace prism::fault {
struct FaultLayer;
}

namespace prism::kernel {

class OverloadGovernor;

/// Routes delivered skbs (including GRO chains) into sockets.
class SocketDeliverer {
 public:
  SocketDeliverer(sim::Simulator& sim, const CostModel& cost)
      : sim_(sim), cost_(cost) {}

  void set_packet_trace(trace::PacketTrace* trace) noexcept {
    trace_ = trace;
  }
  const trace::PacketTrace* packet_trace() const noexcept { return trace_; }

  /// Attaches the latency ledger and flow table (telemetry/latency.h,
  /// telemetry/flow_table.h). Delivery is the one point where a packet's
  /// journey is complete, so the per-stage breakdown and the per-flow
  /// accounting are both recorded here. nullptr detaches.
  void set_latency(telemetry::LatencyLedger* ledger,
                   telemetry::FlowTable* flows) noexcept {
    ledger_ = ledger;
    flows_ = flows;
  }

  /// Attaches the flight recorder (traced journeys end here with a
  /// deliver event; traced protocol-level drops are recorded as stage-4
  /// drops) and the anomaly bank, which sees EVERY delivery — the SLO
  /// detector evaluates the full population, not the sampled one.
  /// nullptr detaches.
  void set_flight_recorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  void set_anomalies(telemetry::AnomalyBank* anomalies) noexcept {
    anomalies_ = anomalies;
  }

  /// Delivers every frame carried by `skb` (head + GRO chain) to sockets
  /// in `ns` at instant `at`. Returns extra in-kernel cost incurred
  /// (e.g. TCP ACK transmission). Frames without a matching socket are
  /// dropped and counted.
  sim::Duration deliver(Skb& skb, sim::Time at, overlay::Netns& ns);

  std::uint64_t no_socket_drops() const noexcept { return drops_; }
  /// Frames rejected by receive-side L4 checksum verification.
  std::uint64_t csum_drops() const noexcept { return csum_drops_; }
  /// Frames addressed to a draining or torn-down namespace.
  std::uint64_t dead_ns_drops() const noexcept { return dead_ns_drops_; }
  std::uint64_t delivered() const noexcept { return delivered_; }

  /// Attaches the host's fault layer (drop attribution + buffer
  /// alloc-failure injection). nullptr detaches.
  void set_faults(fault::FaultLayer* faults) noexcept { faults_ = faults; }

  /// Attaches the host's overload governor: successful socket deliveries
  /// feed its receiver-livelock watchdog (drops deliberately do not —
  /// a flood that never reaches a socket is exactly a livelock). nullptr
  /// detaches.
  void set_governor(OverloadGovernor* governor) noexcept {
    governor_ = governor;
  }

  /// Registers delivery counters under `prefix` (e.g. "sockets.").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_delivered_ = &reg.counter(prefix + "delivered");
    t_no_socket_drops_ = &reg.counter(prefix + "no_socket_drops");
    t_csum_drops_ = &reg.counter(prefix + "csum_drops");
    t_dead_ns_drops_ = &reg.counter(prefix + "dead_ns_drops");
  }

 private:
  /// `pre_parsed` (optional) is the caller's existing parse of `frame` —
  /// the skb's cached head-frame parse — reused instead of re-parsing.
  sim::Duration deliver_frame(const Skb& skb,
                              std::span<const std::uint8_t> frame,
                              const net::ParsedFrame* pre_parsed,
                              sim::Time at, overlay::Netns& ns,
                              bool final_frame);

  sim::Simulator& sim_;
  const CostModel& cost_;
  trace::PacketTrace* trace_ = nullptr;
  telemetry::LatencyLedger* ledger_ = nullptr;
  telemetry::FlowTable* flows_ = nullptr;
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::AnomalyBank* anomalies_ = nullptr;
  fault::FaultLayer* faults_ = nullptr;
  OverloadGovernor* governor_ = nullptr;
  std::uint64_t drops_ = 0;
  std::uint64_t csum_drops_ = 0;
  std::uint64_t dead_ns_drops_ = 0;
  std::uint64_t delivered_ = 0;
  telemetry::Counter* t_delivered_ = &telemetry::Counter::sink();
  telemetry::Counter* t_no_socket_drops_ = &telemetry::Counter::sink();
  telemetry::Counter* t_csum_drops_ = &telemetry::Counter::sink();
  telemetry::Counter* t_dead_ns_drops_ = &telemetry::Counter::sink();
};

}  // namespace prism::kernel
