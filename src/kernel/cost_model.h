// Calibrated processing-cost model for the simulated kernel network stack.
//
// The simulator charges simulated CPU time for every piece of in-kernel
// work. The constants below are calibrated so that the simulated testbed
// reproduces the operating points the paper reports for its hardware
// (2.2 GHz Xeon Silver 4114, ConnectX-5 100GbE, Linux 5.4):
//
//   * 300 Kpps of overlay UDP background traffic consumes 60-70% of one
//     packet-processing core (paper §V-A);
//   * maximum per-core overlay throughput is ~400 Kpps for Vanilla and
//     PRISM-batch, ~300 Kpps for PRISM-sync (paper Fig. 8) — i.e. a fully
//     batched packet costs ~2.4 us across the three stages, and losing
//     batch amortization (PRISM-sync) raises that to ~3.3 us.
//
// Absolute latencies are not expected to match the paper's testbed; the
// calibration preserves relative behaviour (who wins, by what factor).
#pragma once

#include "sim/time.h"

namespace prism::kernel {

/// All per-operation costs charged by the simulated stack. A value object:
/// copy it, tweak fields, build a Host with it (ablation benches do).
struct CostModel {
  // --- per-stage protocol processing (per packet) -----------------------
  /// Stage 1: NIC driver poll — DMA unmap, skb allocation, outer
  /// Ethernet/IP/UDP processing, VXLAN decap for overlay packets.
  sim::Duration nic_stage_per_packet = sim::nanoseconds(420);
  /// Stage 2: bridge (gro_cells) — inner Ethernet processing, FDB lookup,
  /// bridge forwarding to the destination veth port.
  sim::Duration bridge_stage_per_packet = sim::nanoseconds(760);
  /// Stage 3: backlog (veth) — inner IP/UDP/TCP processing, socket lookup,
  /// socket buffer enqueue.
  sim::Duration backlog_stage_per_packet = sim::nanoseconds(860);
  /// Single-stage host path: full protocol processing of a native
  /// (non-overlay) packet up to the socket buffer.
  sim::Duration host_path_per_packet = sim::nanoseconds(1400);
  /// Cache/memory pressure: per-packet stage costs grow with the depth of
  /// the queue being polled (deep batches blow the working set out of
  /// cache). A poll starting with >= 64 queued packets pays
  /// (1 + cache_pressure) times the base per-packet cost. This is why
  /// per-core throughput saturates near 400 Kpps while 300 Kpps of
  /// lightly-batched traffic only consumes ~70% of the core.
  double cache_pressure = 0.25;

  // --- batching machinery ------------------------------------------------
  /// Fixed cost of one napi_poll invocation on one device: softirq device
  /// switch, queue locking, GRO flush. Amortized over the batch in
  /// Vanilla; this amortization is part of what PRISM-sync gives up.
  sim::Duration napi_poll_overhead = sim::nanoseconds(1200);
  /// Entry cost of one net_rx_action softirq invocation (local_irq save,
  /// list splice, softirq accounting).
  sim::Duration softirq_entry = sim::nanoseconds(800);
  /// Hardware interrupt handling (top half) incl. context switch.
  sim::Duration irq_cost = sim::nanoseconds(1000);
  /// RPS: sender-side cost of steering one packet to another CPU's
  /// backlog (enqueue_to_backlog + IPI send).
  sim::Duration rps_steer_cost = sim::nanoseconds(250);
  /// RPS: latency of the inter-processor interrupt until the target CPU
  /// sees the backlog (paper §II-A footnote 1).
  sim::Duration ipi_latency = sim::nanoseconds(600);
  /// PRISM-sync stage-transition cost per packet per stage: the direct
  /// function call into the next stage's processing context, paid instead
  /// of the (amortized) queue + poll machinery. Includes the icache
  /// penalty of ping-ponging between stage code paths per packet.
  sim::Duration sync_transition = sim::nanoseconds(350);
  /// PRISM priority lookup at skb allocation time (hash probe of the
  /// high-priority (ip, port) database). Charged in PRISM modes only.
  sim::Duration priority_check = sim::nanoseconds(40);
  /// GRO merge of one additional in-order TCP segment into the head skb
  /// (paid instead of the full per-stage cost for that segment).
  sim::Duration gro_merge_per_segment = sim::nanoseconds(250);

  // --- overlay flow cache (ONCache-style fast path) -----------------------
  /// Probe of the per-flow transform cache at stage 1: one hash of the
  /// decapsulated five-tuple plus a generation compare. Paid by every
  /// overlay packet while the cache is enabled, hit or miss.
  sim::Duration flowcache_lookup = sim::nanoseconds(60);
  /// Applying a cached transform on a hit: in-place decap, netns/priority
  /// from the entry, direct socket delivery. Replaces the bridge +
  /// backlog stage walk and the stage-transition machinery.
  sim::Duration flowcache_fast_path = sim::nanoseconds(350);

  // --- kernel/user boundary ----------------------------------------------
  /// Waking a task blocked in recv*: scheduler enqueue + IPI to the app
  /// core + context switch on arrival.
  sim::Duration wakeup_cost = sim::nanoseconds(2500);
  /// One syscall round trip (recvmsg/sendmsg) excluding data copy.
  sim::Duration syscall_cost = sim::microseconds(1);
  /// copy_to_user / copy_from_user, per byte.
  double copy_per_byte_ns = 0.03;

  // --- transmit path ------------------------------------------------------
  /// Egress processing of one MTU-sized packet: protocol build + qdisc +
  /// driver doorbell (native path).
  sim::Duration tx_per_packet = sim::nanoseconds(900);
  /// Additional egress cost for overlay packets: veth + bridge + VXLAN
  /// encapsulation.
  sim::Duration tx_overlay_extra = sim::nanoseconds(700);
  /// With TSO, successive segments of one large send bypass most of the
  /// per-packet egress stack; each extra segment costs only this much.
  sim::Duration tx_tso_per_segment = sim::nanoseconds(150);
  /// Building and transmitting a pure TCP ACK from softirq context.
  sim::Duration tx_ack = sim::nanoseconds(400);

  // --- CPU power management ------------------------------------------------
  /// Idle residency after which the core enters its (shallowest, C1)
  /// sleep state. Matches the paper's setup of max C-state = 1.
  sim::Duration cstate_entry_threshold = sim::microseconds(100);
  /// Exit latency paid by the first work after an idle period, including
  /// the frequency ramp that follows. Responsible for the low-load
  /// latency bump in Fig. 11.
  sim::Duration cstate_exit_latency = sim::microseconds(2);

  // --- NAPI parameters (Linux defaults) ------------------------------------
  /// Packets processed per device per poll (netdev budget per device).
  int napi_batch_size = 64;
  /// Max packets processed per net_rx_action invocation.
  int napi_budget = 300;
  /// Max simulated time one net_rx_action invocation may run (the
  /// kernel's netdev_budget_usecs, default 2 ms). Hitting either budget
  /// with work remaining counts one time_squeeze, as in the kernel.
  sim::Duration netdev_budget_usecs = sim::microseconds(2000);

  /// Cost of copying `bytes` across the kernel/user boundary.
  sim::Duration copy_cost(std::size_t bytes) const {
    return static_cast<sim::Duration>(copy_per_byte_ns *
                                      static_cast<double>(bytes));
  }

  /// Per-packet cost multiplier for a poll that started with
  /// `queue_depth` packets pending (see cache_pressure).
  double depth_multiplier(std::size_t queue_depth) const {
    const double d = queue_depth > 64 ? 64.0
                                      : static_cast<double>(queue_depth);
    return 1.0 + cache_pressure * d / 64.0;
  }
};

}  // namespace prism::kernel
