#include "nic/nic.h"

#include <stdexcept>
#include <utility>

#include "net/flow.h"
#include "nic/wire.h"

namespace prism::nic {

RxQueue::RxQueue(sim::Simulator& sim, std::size_t capacity,
                 CoalesceConfig coalesce)
    : sim_(sim), capacity_(capacity), coalesce_(coalesce) {
  if (capacity == 0) {
    throw std::invalid_argument("RxQueue: capacity must be positive");
  }
  if (coalesce.frames < 1) {
    throw std::invalid_argument("RxQueue: coalesce.frames must be >= 1");
  }
}

void RxQueue::set_irq_handler(std::function<void()> handler) {
  irq_handler_ = std::move(handler);
}

void RxQueue::bind_telemetry(telemetry::Registry& reg,
                             const std::string& prefix) {
  t_frames_ = &reg.counter(prefix + "frames");
  t_ring_drops_ = &reg.counter(prefix + "ring_drops");
  t_irqs_ = &reg.counter(prefix + "irqs");
  t_irq_unmask_ = &reg.counter(prefix + "irq_unmask");
  t_mod_fires_ = &reg.counter(prefix + "moderation_fires");
  t_ring_depth_ = &reg.gauge(prefix + "ring_depth");
}

void RxQueue::push(net::PacketBuf frame) {
  bool full = ring_.size() >= capacity_;
#if PRISM_FAULTS_ENABLED
  if (!full && faults_ != nullptr && faults_->plan.force_ring_full()) {
    full = true;
  }
#endif
  if (full) {
    ++dropped_;
    t_ring_drops_->inc();
    if (faults_ != nullptr) {
      faults_->drops.record_frame(fault::DropReason::kRingFull,
                                  frame.bytes());
    }
    return;
  }
  ring_.push_back(Entry{std::move(frame), sim_.now()});
  ++received_;
  t_frames_->inc();
  t_ring_depth_->set(static_cast<std::int64_t>(ring_.size()));
  maybe_fire();
}

void RxQueue::maybe_fire() {
  if (!irq_enabled_ || ring_.empty()) return;
  if (coalesce_.usecs == 0 ||
      static_cast<int>(ring_.size()) >=
          coalesce_.frames ||
      sim_.now() - last_fire_ >= coalesce_.usecs) {
    // No moderation, frame threshold reached, or the line has been quiet
    // long enough (adaptive low-rate behaviour): interrupt immediately.
    fire_irq();
    return;
  }
  // Moderated: one interrupt per `usecs`. Arm a timer for the end of the
  // current moderation window.
  if (timer_armed_) return;
  timer_armed_ = true;
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(last_fire_ + coalesce_.usecs, [this, epoch] {
    if (epoch != epoch_) return;  // an earlier fire superseded this timer
    timer_armed_ = false;
    t_mod_fires_->inc();
    if (irq_enabled_ && !ring_.empty()) fire_irq();
  });
}

std::optional<RxQueue::Entry> RxQueue::pop() {
  if (ring_.empty()) return std::nullopt;
  Entry e = std::move(ring_.front());
  ring_.pop_front();
  return e;
}

void RxQueue::enable_irq() {
  irq_enabled_ = true;
  t_irq_unmask_->inc();
  maybe_fire();
}

void RxQueue::fire_irq() {
  irq_enabled_ = false;
  last_fire_ = sim_.now();
  ++epoch_;
  timer_armed_ = false;
  ++irqs_;
  t_irqs_->inc();
  if (!irq_handler_) return;
#if PRISM_FAULTS_ENABLED
  if (faults_ != nullptr && faults_->plan.active()) {
    const sim::Duration delay = faults_->plan.irq_fire_delay();
    const int extra = faults_->plan.irq_storm_extra_fires();
    if (delay > 0 || extra > 0) {
      // Delayed and/or spurious handler invocations. The extra fires hit
      // a masked line (irq_enabled_ is already false), exercising the
      // NAPI schedule path's idempotence the way a stuck INTx line would.
      for (int i = 0; i <= extra; ++i) {
        sim_.schedule(delay + i, [this] {
          if (irq_handler_) irq_handler_();
        });
      }
      return;
    }
  }
#endif
  irq_handler_();
}

Nic::Nic(sim::Simulator& sim, int num_queues, std::size_t ring_capacity,
         CoalesceConfig coalesce)
    : sim_(sim) {
  if (num_queues < 1) {
    throw std::invalid_argument("Nic: need at least one queue");
  }
  queues_.reserve(static_cast<std::size_t>(num_queues));
  for (int i = 0; i < num_queues; ++i) {
    queues_.push_back(
        std::make_unique<RxQueue>(sim, ring_capacity, coalesce));
  }
}

void Nic::bind_telemetry(telemetry::Registry& reg,
                         const std::string& prefix) {
  t_tx_ = &reg.counter(prefix + "tx_frames");
  t_rx_ = &reg.counter(prefix + "rx_frames");
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    queues_[i]->bind_telemetry(reg,
                               prefix + "q" + std::to_string(i) + ".");
  }
}

void Nic::transmit(net::PacketBuf frame) {
  if (wire_ == nullptr) {
    throw std::logic_error("Nic::transmit: no wire attached");
  }
  ++tx_frames_;
  t_tx_->inc();
  wire_->transmit_from(*this, std::move(frame));
}

void Nic::set_faults(fault::FaultLayer* faults) noexcept {
  faults_ = faults;
  for (auto& q : queues_) q->set_faults(faults);
}

void Nic::receive(net::PacketBuf frame) {
#if PRISM_FAULTS_ENABLED
  if (faults_ != nullptr && faults_->plan.active()) {
    const auto act = faults_->plan.on_wire_frame(frame);
    if (act.drop) {
      // Lost on the wire: the NIC never saw it. The frame's storage
      // recycles to the BufferPool on destruction.
      faults_->drops.record_frame(fault::DropReason::kWire, frame.bytes());
      return;
    }
    if (act.duplicate) {
      // The duplicate counts on the injected side of the conservation
      // equation, attributed to the frame's priority class.
      faults_->plan.count_duplicate(faults_->drops.classify(frame.bytes()));
      deliver_to_ring(net::PacketBuf(frame));
    }
    if (act.reorder_delay > 0) {
      sim_.schedule(act.reorder_delay,
                    [this, f = std::move(frame)]() mutable {
                      deliver_to_ring(std::move(f));
                    });
      return;
    }
  }
#endif
  deliver_to_ring(std::move(frame));
}

void Nic::deliver_to_ring(net::PacketBuf frame) {
  ++rx_frames_;
  t_rx_->inc();
  const int q = rss_hash(frame.bytes());
  queues_[static_cast<std::size_t>(q)]->push(std::move(frame));
}

std::uint64_t Nic::rx_dropped() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->frames_dropped();
  return total;
}

int Nic::rss_hash(std::span<const std::uint8_t> frame) const {
  if (queues_.size() == 1) return 0;
  // Hash of the outer 5-tuple, as hardware RSS does. VXLAN entropy comes
  // from the outer UDP source port, which encapsulation derives from the
  // inner flow.
  const auto parsed = net::parse_frame(frame);
  if (!parsed) return 0;
  const auto h = std::hash<net::FiveTuple>{}(net::flow_of(*parsed));
  return static_cast<int>(h % queues_.size());
}

}  // namespace prism::nic
