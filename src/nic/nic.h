// Physical NIC model.
//
// Mirrors the relevant behaviour of the paper's ConnectX-5: multiple
// hardware receive queues (RSS — flows are hashed to queues, each queue
// interrupting its own CPU), a fixed-capacity descriptor ring per queue
// (frames are dropped when a ring overflows, which is how overload
// manifests), and NAPI interrupt semantics (the queue's IRQ fires on
// arrival and stays masked until the driver's poll drains the ring and
// re-enables it).
//
// Faithfully to the paper's limitation (§IV-D), the ring has no notion of
// packet priority: PRISM's differentiation begins only at stage-1 skb
// allocation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"

namespace prism::nic {

class Wire;

/// Interrupt moderation (ethtool rx-usecs / rx-frames). The paper's
/// ConnectX-5 runs adaptive moderation: at low rate interrupts fire
/// immediately; under load they are rate-limited to one per `usecs`,
/// letting the ring accumulate batches — the source of the deep per-batch
/// queueing the paper's Fig. 5 analysis builds on, while the CPU idles
/// between bursts.
struct CoalesceConfig {
  /// Minimum spacing between interrupts. 0 disables moderation (every
  /// frame fires immediately when the line is unmasked).
  sim::Duration usecs = 0;
  /// Fire early once this many frames are pending.
  int frames = 64;
};

/// One hardware RX queue: descriptor ring + masked/unmasked IRQ line.
class RxQueue {
 public:
  /// One ring descriptor: the frame and its DMA-completion instant.
  struct Entry {
    net::PacketBuf frame;
    sim::Time arrived = 0;
  };

  RxQueue(sim::Simulator& sim, std::size_t capacity,
          CoalesceConfig coalesce = CoalesceConfig{});

  /// Installs the IRQ top-half (typically: schedule the queue's NAPI on
  /// its CPU). The NIC fires it once per idle->pending transition and
  /// masks further interrupts until enable_irq().
  void set_irq_handler(std::function<void()> handler);

  /// DMA of one arrived frame into the ring. Drops (and counts) when the
  /// ring is full. Fires the IRQ if it is unmasked.
  void push(net::PacketBuf frame);

  /// Driver-side dequeue of the oldest frame. nullopt when empty.
  std::optional<Entry> pop();

  bool empty() const noexcept { return ring_.empty(); }
  std::size_t size() const noexcept { return ring_.size(); }

  /// Driver re-enables the interrupt after draining (napi_complete). If
  /// frames raced in meanwhile, the IRQ fires immediately — the same
  /// re-check the kernel performs.
  void enable_irq();

  std::uint64_t frames_received() const noexcept { return received_; }
  std::uint64_t frames_dropped() const noexcept { return dropped_; }
  std::uint64_t irqs_fired() const noexcept { return irqs_; }

  /// Replaces the moderation parameters at runtime (ethtool -C; the
  /// overload governor stretches usecs under declared overload). The new
  /// spacing applies from the next fire decision.
  void set_coalesce(CoalesceConfig coalesce) noexcept {
    coalesce_ = coalesce;
  }
  const CoalesceConfig& coalesce() const noexcept { return coalesce_; }

  /// Registers this queue's counters under `prefix` (e.g. "nic.q0.").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

  /// Attaches the host's fault layer: ring drops are attributed to the
  /// drop ledger, and the plan may force ring-full episodes and IRQ
  /// storms/delays. nullptr detaches.
  void set_faults(fault::FaultLayer* faults) noexcept { faults_ = faults; }

 private:
  void maybe_fire();
  void fire_irq();

  sim::Simulator& sim_;
  std::size_t capacity_;
  CoalesceConfig coalesce_;
  fault::FaultLayer* faults_ = nullptr;
  std::deque<Entry> ring_;
  std::function<void()> irq_handler_;
  bool irq_enabled_ = true;
  sim::Time last_fire_ = sim::Time{-1} << 40;  // "long ago"
  bool timer_armed_ = false;
  std::uint64_t epoch_ = 0;  // invalidates stale coalesce timers
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t irqs_ = 0;
  telemetry::Counter* t_frames_ = &telemetry::Counter::sink();
  telemetry::Counter* t_ring_drops_ = &telemetry::Counter::sink();
  telemetry::Counter* t_irqs_ = &telemetry::Counter::sink();
  telemetry::Counter* t_irq_unmask_ = &telemetry::Counter::sink();
  telemetry::Counter* t_mod_fires_ = &telemetry::Counter::sink();
  telemetry::Gauge* t_ring_depth_ = &telemetry::Gauge::sink();
};

/// Multi-queue NIC attached to one wire.
class Nic {
 public:
  /// `num_queues` RSS queues of `ring_capacity` descriptors each.
  Nic(sim::Simulator& sim, int num_queues, std::size_t ring_capacity,
      CoalesceConfig coalesce = CoalesceConfig{});

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Connects this NIC to a wire endpoint (testbed wiring).
  void attach_wire(Wire& wire) { wire_ = &wire; }

  /// Transmit path: puts a fully built frame on the wire.
  void transmit(net::PacketBuf frame);

  /// Wire-side delivery: hashes the frame to an RSS queue and DMAs it.
  void receive(net::PacketBuf frame);

  int num_queues() const noexcept {
    return static_cast<int>(queues_.size());
  }
  RxQueue& queue(int i) { return *queues_[static_cast<std::size_t>(i)]; }

  std::uint64_t tx_frames() const noexcept { return tx_frames_; }
  std::uint64_t rx_frames() const noexcept { return rx_frames_; }

  /// Total drops across all queue rings.
  std::uint64_t rx_dropped() const;

  /// Registers NIC-level counters under `prefix` and each queue's
  /// counters under `prefix` + "q<i>.".
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

  /// Attaches the host's fault layer to the receive path (wire-level
  /// drop/corrupt/truncate/duplicate/reorder) and to every RX queue.
  /// nullptr detaches.
  void set_faults(fault::FaultLayer* faults) noexcept;

 private:
  int rss_hash(std::span<const std::uint8_t> frame) const;

  /// Post-wire delivery: counts the frame and DMAs it into its RSS ring.
  void deliver_to_ring(net::PacketBuf frame);

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<RxQueue>> queues_;
  fault::FaultLayer* faults_ = nullptr;
  Wire* wire_ = nullptr;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  telemetry::Counter* t_tx_ = &telemetry::Counter::sink();
  telemetry::Counter* t_rx_ = &telemetry::Counter::sink();
};

}  // namespace prism::nic
