#include "nic/wire.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nic/nic.h"

namespace prism::nic {

Wire::Wire(sim::Simulator& sim, double bandwidth_gbps,
           sim::Duration propagation)
    : sim_(sim),
      bits_per_ns_(bandwidth_gbps),  // 1 Gbps == 1 bit/ns
      propagation_(propagation) {
  if (bandwidth_gbps <= 0) {
    throw std::invalid_argument("Wire: bandwidth must be positive");
  }
}

void Wire::attach(Nic& a, Nic& b) {
  if (a_ != nullptr || b_ != nullptr) {
    throw std::logic_error("Wire: already attached");
  }
  a_ = &a;
  b_ = &b;
}

sim::Duration Wire::serialization_time(std::size_t bytes) const noexcept {
  // 20 bytes of Ethernet preamble + IFG per frame, as on a real link.
  const double bits = static_cast<double>(bytes + 20) * 8.0;
  const auto t = static_cast<sim::Duration>(bits / bits_per_ns_);
  return t < 1 ? 1 : t;
}

void Wire::transmit_from(const Nic& src, net::PacketBuf frame) {
  if (a_ == nullptr || b_ == nullptr) {
    throw std::logic_error("Wire: transmit before attach");
  }
  const bool from_a = &src == a_;
  if (!from_a && &src != b_) {
    throw std::logic_error("Wire: transmit from unattached NIC");
  }
  Nic* dst = from_a ? b_ : a_;
  sim::Time& busy_until = from_a ? busy_until_ab_ : busy_until_ba_;

  const sim::Duration ser = serialization_time(frame.size());
  const sim::Time start = std::max(sim_.now(), busy_until);
  busy_until = start + ser;
  const sim::Time arrival = busy_until + propagation_;
  ++delivered_;
  sim_.schedule_at(arrival, [dst, f = std::move(frame)]() mutable {
    dst->receive(std::move(f));
  });
}

}  // namespace prism::nic
