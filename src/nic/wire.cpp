#include "nic/wire.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nic/nic.h"

namespace prism::nic {

namespace {

void check_bandwidth(double bandwidth_gbps) {
  if (bandwidth_gbps <= 0) {
    throw std::invalid_argument("Wire: bandwidth must be positive");
  }
}

}  // namespace

Wire::Wire(sim::Simulator& sim, double bandwidth_gbps,
           sim::Duration propagation)
    : sim_a_(sim),
      sim_b_(sim),
      bits_per_ns_(bandwidth_gbps),  // 1 Gbps == 1 bit/ns
      propagation_(propagation) {
  check_bandwidth(bandwidth_gbps);
}

Wire::Wire(sim::LaneSet& lanes, int lane_a, int lane_b,
           double bandwidth_gbps, sim::Duration propagation)
    : sim_a_(lanes.lane(lane_a)),
      sim_b_(lanes.lane(lane_b)),
      lanes_(lane_a != lane_b ? &lanes : nullptr),
      lane_a_(lane_a),
      lane_b_(lane_b),
      bits_per_ns_(bandwidth_gbps),
      propagation_(propagation) {
  check_bandwidth(bandwidth_gbps);
  if (lanes_ != nullptr) {
    // The propagation delay is the conservative lookahead: no frame sent
    // at time t can arrive before t + serialization(>=1) + propagation.
    lanes_->register_link(lane_a_, lane_b_, propagation_);
  }
}

void Wire::attach(Nic& a, Nic& b) {
  if (a_ != nullptr || b_ != nullptr) {
    throw std::logic_error("Wire: already attached");
  }
  a_ = &a;
  b_ = &b;
}

sim::Duration Wire::serialization_time(std::size_t bytes) const noexcept {
  // 20 bytes of Ethernet preamble + IFG per frame, as on a real link.
  const double bits = static_cast<double>(bytes + 20) * 8.0;
  const auto t = static_cast<sim::Duration>(bits / bits_per_ns_);
  return t < 1 ? 1 : t;
}

void Wire::transmit_from(const Nic& src, net::PacketBuf frame) {
  if (a_ == nullptr || b_ == nullptr) {
    throw std::logic_error("Wire: transmit before attach");
  }
  const bool from_a = &src == a_;
  if (!from_a && &src != b_) {
    throw std::logic_error("Wire: transmit from unattached NIC");
  }
  Nic* dst = from_a ? b_ : a_;
  sim::Simulator& src_sim = from_a ? sim_a_ : sim_b_;
  sim::Time& busy_until = from_a ? busy_until_ab_ : busy_until_ba_;

  const sim::Duration ser = serialization_time(frame.size());
  const sim::Time start = std::max(src_sim.now(), busy_until);
  busy_until = start + ser;
  const sim::Time arrival = busy_until + propagation_;
  if (from_a) {
    ++delivered_ab_;
  } else {
    ++delivered_ba_;
  }
  auto deliver = [dst, f = std::move(frame)]() mutable {
    dst->receive(std::move(f));
  };
  if (lanes_ != nullptr) {
    lanes_->post(from_a ? lane_a_ : lane_b_, from_a ? lane_b_ : lane_a_,
                 arrival, std::move(deliver));
  } else {
    src_sim.schedule_at(arrival, std::move(deliver));
  }
}

}  // namespace prism::nic
