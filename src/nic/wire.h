// Point-to-point physical link between two NICs.
//
// Models the paper's testbed topology: two hosts directly connected with a
// 100 GbE cable. Frames serialize onto the wire at link bandwidth
// (per-direction FIFO) and arrive after the propagation delay.
//
// A wire may span two simulation lanes (parallel runs put each host on its
// own lane): the endpoints then live on different Simulators, and delivery
// crosses through the LaneSet's SPSC inboxes instead of a direct
// schedule_at. The propagation delay doubles as the conservative
// lookahead that lets the lanes run concurrently — the wire registers it
// with the LaneSet at attach time.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/lane.h"
#include "sim/simulator.h"

namespace prism::nic {

class Nic;

/// Full-duplex point-to-point link.
class Wire {
 public:
  /// Single-lane wire: both endpoints schedule on `sim`.
  /// `bandwidth_gbps` is per direction. The paper's testbed used 100 GbE.
  Wire(sim::Simulator& sim, double bandwidth_gbps = 100.0,
       sim::Duration propagation = sim::nanoseconds(500));

  /// Cross-lane wire: endpoint a lives on `lanes.lane(lane_a)`, endpoint b
  /// on `lanes.lane(lane_b)`. Registers the propagation delay as lookahead.
  /// `lane_a == lane_b` degrades gracefully to the single-lane behaviour.
  Wire(sim::LaneSet& lanes, int lane_a, int lane_b,
       double bandwidth_gbps = 100.0,
       sim::Duration propagation = sim::nanoseconds(500));

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  /// Attaches the two endpoints (a on the first/lane_a side, b on the
  /// second/lane_b side). Must be called exactly once before any transmit.
  void attach(Nic& a, Nic& b);

  /// Puts `frame` on the wire from endpoint `src`. The frame is delivered
  /// to the opposite endpoint after queueing (if the direction is busy),
  /// serialization, and propagation. Thread-safe across lanes: each
  /// direction's state is only touched by its source lane.
  void transmit_from(const Nic& src, net::PacketBuf frame);

  /// Serialization time of a frame of `bytes` at link bandwidth.
  sim::Duration serialization_time(std::size_t bytes) const noexcept;

  sim::Duration propagation() const noexcept { return propagation_; }

  std::uint64_t frames_delivered() const noexcept {
    return delivered_ab_ + delivered_ba_;
  }

 private:
  sim::Simulator& sim_a_;  ///< endpoint a's lane (== b's when single-lane)
  sim::Simulator& sim_b_;
  sim::LaneSet* lanes_ = nullptr;  ///< non-null when lane_a_ != lane_b_
  int lane_a_ = 0;
  int lane_b_ = 0;
  double bits_per_ns_;
  sim::Duration propagation_;
  Nic* a_ = nullptr;
  Nic* b_ = nullptr;
  // Per-direction state: written only by the source endpoint's lane.
  sim::Time busy_until_ab_ = 0;
  sim::Time busy_until_ba_ = 0;
  std::uint64_t delivered_ab_ = 0;
  std::uint64_t delivered_ba_ = 0;
};

}  // namespace prism::nic
