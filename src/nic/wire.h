// Point-to-point physical link between two NICs.
//
// Models the paper's testbed topology: two hosts directly connected with a
// 100 GbE cable. Frames serialize onto the wire at link bandwidth
// (per-direction FIFO) and arrive after the propagation delay.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/simulator.h"

namespace prism::nic {

class Nic;

/// Full-duplex point-to-point link.
class Wire {
 public:
  /// `bandwidth_gbps` is per direction. The paper's testbed used 100 GbE.
  Wire(sim::Simulator& sim, double bandwidth_gbps = 100.0,
       sim::Duration propagation = sim::nanoseconds(500));

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  /// Attaches the two endpoints. Must be called exactly once before any
  /// transmit.
  void attach(Nic& a, Nic& b);

  /// Puts `frame` on the wire from endpoint `src`. The frame is delivered
  /// to the opposite endpoint after queueing (if the direction is busy),
  /// serialization, and propagation.
  void transmit_from(const Nic& src, net::PacketBuf frame);

  /// Serialization time of a frame of `bytes` at link bandwidth.
  sim::Duration serialization_time(std::size_t bytes) const noexcept;

  std::uint64_t frames_delivered() const noexcept { return delivered_; }

 private:
  sim::Simulator& sim_;
  double bits_per_ns_;
  sim::Duration propagation_;
  Nic* a_ = nullptr;
  Nic* b_ = nullptr;
  sim::Time busy_until_ab_ = 0;
  sim::Time busy_until_ba_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace prism::nic
