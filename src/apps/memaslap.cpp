#include "apps/memaslap.h"

#include <cassert>

namespace prism::apps {

MemaslapClient::MemaslapClient(sim::Simulator& sim, Config config)
    : sim_(sim), cfg_(config), rng_(config.seed) {
  assert(cfg_.host && cfg_.ns && cfg_.cpu && "MemaslapClient: bad config");
  slots_.resize(static_cast<std::size_t>(cfg_.concurrency));
  sock_ = &cfg_.host->udp_bind(*cfg_.ns, cfg_.src_port);
  sock_->set_on_readable([this] {
    if (!rx_busy_) {
      rx_busy_ = true;
      begin_rx(/*wakeup=*/true);
    }
  });
}

void MemaslapClient::start() {
  sim_.schedule_at(cfg_.start_at, [this] {
    for (int slot = 0; slot < cfg_.concurrency; ++slot) issue(slot);
  });
}

void MemaslapClient::issue(int slot) {
  if (sim_.now() >= cfg_.stop_at) return;

  KvRequest req;
  req.probe.seq = next_seq_++;
  req.probe.sent_at = sim_.now();
  const int key_index =
      static_cast<int>(rng_.uniform_int(0, cfg_.key_count - 1));
  req.key = MemcachedServer::key_name(key_index);
  if (rng_.chance(cfg_.get_ratio)) {
    req.op = KvOp::kGet;
    ++gets_;
  } else {
    req.op = KvOp::kSet;
    req.value = std::vector<std::uint8_t>(cfg_.value_size, 0x42);
    ++sets_;
  }
  auto& s = slots_.at(static_cast<std::size_t>(slot));
  s.req = std::move(req);
  s.attempts = 0;
  send_current(slot);
}

void MemaslapClient::send_current(int slot) {
  const auto& s = slots_.at(static_cast<std::size_t>(slot));
  const std::uint64_t seq = s.req.probe.seq;
  in_flight_[seq] = slot;
  cfg_.host->udp_send(*cfg_.ns, *cfg_.cpu, cfg_.src_port, cfg_.server_ip,
                      cfg_.server_port, encode_kv_request(s.req));
  sim_.schedule(cfg_.request_timeout,
                [this, slot, seq] { on_timeout(slot, seq); });
}

void MemaslapClient::on_timeout(int slot, std::uint64_t seq) {
  const auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;  // already answered
  in_flight_.erase(it);
  auto& s = slots_.at(static_cast<std::size_t>(slot));
  if (s.attempts < cfg_.max_retries && sim_.now() < cfg_.stop_at) {
    // Same request, same seq: a late response to any attempt completes
    // the slot. Backoff doubles per attempt, capped.
    ++s.attempts;
    ++retries_;
    sim::Duration wait = cfg_.retry_backoff << (s.attempts - 1);
    if (wait > cfg_.max_backoff) wait = cfg_.max_backoff;
    if (wait < 1) wait = 1;
    sim_.schedule(wait, [this, slot] { send_current(slot); });
    return;
  }
  ++timeouts_;
  issue(slot);  // keep the slot busy with a fresh request
}

void MemaslapClient::begin_rx(bool wakeup) {
  const auto& cost = cfg_.host->cost();
  // Response copy dominated by the value size on get hits.
  sim::Duration c =
      cost.syscall_cost + cost.copy_cost(cfg_.value_size + 32);
  if (wakeup) c += cost.wakeup_cost;
  cfg_.cpu->run_task(c, [this] { finish_rx(); });
}

void MemaslapClient::finish_rx() {
  auto d = sock_->try_recv();
  if (!d) {
    rx_busy_ = false;
    return;
  }
  if (const auto resp = decode_kv_response(d->payload)) {
    const auto it = in_flight_.find(resp->probe.seq);
    if (it != in_flight_.end()) {
      const int slot = it->second;
      in_flight_.erase(it);
      ++completed_;
      latency_.record(sim_.now() - resp->probe.sent_at);
      issue(slot);
    }
    // else: response to a timed-out request — already rescheduled.
  }
  if (sock_->has_data()) {
    begin_rx(/*wakeup=*/false);
  } else {
    rx_busy_ = false;
  }
}

double MemaslapClient::ops_per_second() const noexcept {
  const double span = sim::to_s(cfg_.stop_at - cfg_.start_at);
  return span <= 0 ? 0.0 : static_cast<double>(completed_) / span;
}

}  // namespace prism::apps
