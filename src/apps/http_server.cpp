#include "apps/http_server.h"

#include <cassert>
#include <stdexcept>

namespace prism::apps {

HttpServer::HttpServer(Config config) : cfg_(config) {
  assert(cfg_.host && cfg_.ns && cfg_.cpu && cfg_.connection &&
         "HttpServer: bad config");
  if (cfg_.response_size < kProbeSize) {
    throw std::invalid_argument("HttpServer: response smaller than probe");
  }
  cfg_.connection->on_data = [this](std::span<const std::uint8_t> data,
                                    sim::Time) { on_stream_data(data); };
}

void HttpServer::on_stream_data(std::span<const std::uint8_t> data) {
  framer_.push(data);
  while (auto msg = framer_.next()) pending_.push_back(std::move(*msg));
  if (!busy_ && !pending_.empty()) {
    busy_ = true;
    // Wakeup from epoll_wait, then handle the request.
    const auto& cost = cfg_.host->cost();
    cfg_.cpu->run_task(cost.wakeup_cost, [this] { process_next(); });
  }
}

void HttpServer::process_next() {
  if (pending_.empty()) {
    busy_ = false;
    return;
  }
  std::vector<std::uint8_t> request = std::move(pending_.front());
  pending_.pop_front();
  const auto probe = decode_probe(request);
  const auto& cost = cfg_.host->cost();
  const sim::Duration work = cost.syscall_cost +
                             cost.copy_cost(request.size()) +
                             cfg_.service_time;
  cfg_.cpu->run_task(work, [this, probe] {
    ++served_;
    Probe echo = probe.value_or(Probe{});
    // The response echoes the request probe, padded to the file size.
    std::vector<std::uint8_t> body =
        encode_probe(echo, cfg_.response_size);
    cfg_.connection->send(MessageFramer::frame(body), *cfg_.cpu);
    process_next();
  });
}

Wrk2Client::Wrk2Client(sim::Simulator& sim, Config config)
    : sim_(sim), cfg_(config), rng_(config.seed) {
  assert(cfg_.host && cfg_.ns && cfg_.cpu && cfg_.connection &&
         "Wrk2Client: bad config");
  if (cfg_.rate_rps <= 0) {
    throw std::invalid_argument("Wrk2Client: rate must be positive");
  }
  if (cfg_.request_size < kProbeSize) {
    throw std::invalid_argument("Wrk2Client: request smaller than probe");
  }
  interval_ = static_cast<sim::Duration>(1e9 / cfg_.rate_rps);
  cfg_.connection->on_data = [this](std::span<const std::uint8_t> data,
                                    sim::Time) { on_stream_data(data); };
}

void Wrk2Client::start() {
  sim_.schedule_at(cfg_.start_at, [this] { tick(); });
}

void Wrk2Client::tick() {
  if (sim_.now() >= cfg_.stop_at) return;
  sim::Duration gap = interval_;
  if (cfg_.jitter > 0) {
    gap = static_cast<sim::Duration>(
        static_cast<double>(interval_) *
        rng_.uniform(1.0 - cfg_.jitter, 1.0 + cfg_.jitter));
    if (gap < 1) gap = 1;
  }
  sim_.schedule(gap, [this] { tick(); });
  Probe probe;
  probe.seq = next_seq_++;
  // wrk2: latency is measured from the request's *scheduled* time, so a
  // backed-up connection cannot hide queueing delay (no coordinated
  // omission).
  probe.sent_at = sim_.now();
  ++sent_;
  cfg_.connection->send(
      MessageFramer::frame(encode_probe(probe, cfg_.request_size)),
      *cfg_.cpu);
}

void Wrk2Client::on_stream_data(std::span<const std::uint8_t> data) {
  framer_.push(data);
  while (auto msg = framer_.next()) {
    if (const auto probe = decode_probe(*msg)) {
      ++completed_;
      latency_.record(sim_.now() - probe->sent_at);
    }
  }
}

double Wrk2Client::requests_per_second() const noexcept {
  const double span = sim::to_s(cfg_.stop_at - cfg_.start_at);
  return span <= 0 ? 0.0 : static_cast<double>(completed_) / span;
}

}  // namespace prism::apps
