// Application payload encoding.
//
// Workload generators embed sequence numbers and send timestamps *inside
// the packet payload*, exactly as sockperf/memaslap/wrk do: measurement
// data travels through the real byte path (encapsulation, GRO merges,
// socket copies), so any corruption or mis-delivery breaks the measurement
// loudly instead of silently.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "sim/time.h"

namespace prism::apps {

/// Probe header embedded at the start of measurement payloads.
struct Probe {
  std::uint64_t seq = 0;
  sim::Time sent_at = 0;
  /// Echo requested (sockperf --reply-every semantics).
  bool reply = false;
};

/// Bytes occupied by an encoded probe.
constexpr std::size_t kProbeSize = 24;

/// Encodes a probe padded with zeros to `payload_size` (>= kProbeSize;
/// throws std::invalid_argument otherwise).
std::vector<std::uint8_t> encode_probe(const Probe& probe,
                                       std::size_t payload_size);

/// As encode_probe, but writes into `out`, reusing its capacity — for
/// send loops that build one probe per packet.
void encode_probe_into(const Probe& probe, std::size_t payload_size,
                       std::vector<std::uint8_t>& out);

/// Decodes a probe from the start of `payload`; nullopt if too short.
std::optional<Probe> decode_probe(std::span<const std::uint8_t> payload);

/// Length-prefixed message framing for TCP byte streams
/// ([u32 length][body...]).
class MessageFramer {
 public:
  /// Appends stream bytes.
  void push(std::span<const std::uint8_t> data);

  /// Extracts the next complete message body, nullopt when incomplete.
  std::optional<std::vector<std::uint8_t>> next();

  /// Frames a message body for sending.
  static std::vector<std::uint8_t> frame(
      std::span<const std::uint8_t> body);

  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }

 private:
  std::deque<std::uint8_t> buffer_;
};

}  // namespace prism::apps
