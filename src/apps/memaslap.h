// memaslap-style memcached load generator (paper §V-C1).
//
// Closed-loop client: `concurrency` outstanding requests per thread, each
// completion immediately issuing the next request (a get or a set per the
// configured ratio). Reports operation throughput and request latency —
// the metrics of the paper's Fig. 12. Slots time out so UDP drops under
// overload cannot wedge the loop.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "apps/memcached.h"
#include "sim/rng.h"
#include "stats/histogram.h"

namespace prism::apps {

class MemaslapClient {
 public:
  struct Config {
    kernel::Host* host = nullptr;
    overlay::Netns* ns = nullptr;
    kernel::Cpu* cpu = nullptr;
    std::uint16_t src_port = 30000;
    net::Ipv4Addr server_ip;
    std::uint16_t server_port = 11211;
    int concurrency = 16;
    double get_ratio = 0.9;  // memaslap default 9:1 get:set
    int key_count = 10000;
    std::size_t value_size = 1024;
    sim::Time start_at = 0;
    sim::Time stop_at = sim::seconds(1);
    sim::Duration request_timeout = sim::milliseconds(50);
    /// Same-request retries after a timeout (container churn
    /// resilience): the request resends with its original seq after a
    /// backoff that doubles per attempt up to max_backoff. 0 = abandon
    /// on first timeout and issue a fresh request (the pre-churn
    /// behavior).
    int max_retries = 0;
    sim::Duration retry_backoff = sim::milliseconds(1);
    sim::Duration max_backoff = sim::milliseconds(8);
    std::uint64_t seed = 1;
  };

  MemaslapClient(sim::Simulator& sim, Config config);

  /// Launches the closed loop. Call once before Simulator::run.
  void start();

  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t gets() const noexcept { return gets_; }
  std::uint64_t sets() const noexcept { return sets_; }
  std::uint64_t timeouts() const noexcept { return timeouts_; }
  /// Timeout-driven same-request resends (each is one extra udp_send, so
  /// total request sends = gets() + sets() + retries()).
  std::uint64_t retries() const noexcept { return retries_; }

  /// Request-response latency (full RTT, as memaslap reports).
  const stats::Histogram& latency() const noexcept { return latency_; }

  /// Achieved operations per second over [start_at, stop_at].
  double ops_per_second() const noexcept;

 private:
  void issue(int slot);
  void send_current(int slot);
  void on_timeout(int slot, std::uint64_t seq);
  void begin_rx(bool wakeup);
  void finish_rx();

  sim::Simulator& sim_;
  Config cfg_;
  kernel::UdpSocket* sock_;
  sim::Rng rng_;
  std::uint64_t next_seq_ = 0;
  /// seq -> slot for requests in flight.
  std::unordered_map<std::uint64_t, int> in_flight_;
  /// Per-slot current request, kept for same-seq retries.
  struct Slot {
    KvRequest req;
    int attempts = 0;  ///< retries performed for the current request
  };
  std::vector<Slot> slots_;
  bool rx_busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t sets_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  stats::Histogram latency_;
};

}  // namespace prism::apps
