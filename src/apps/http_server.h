// Web-serving workload (paper §V-C2): nginx-style static server and a
// wrk2-style constant-throughput client over a single TCP connection.
//
// Requests and responses are length-prefixed messages on the TCP stream,
// each carrying the measurement probe; the response is padded to the
// configured static-file size (the paper serves a <1 KB HTML file).
// The client is open-loop at a constant rate and measures latency from
// each request's *scheduled* send time — wrk2's coordinated-omission-free
// accounting.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "apps/payload.h"
#include "kernel/host.h"
#include "sim/rng.h"
#include "stats/histogram.h"

namespace prism::apps {

/// Single-connection static-content server.
class HttpServer {
 public:
  struct Config {
    kernel::Host* host = nullptr;
    overlay::Netns* ns = nullptr;
    kernel::Cpu* cpu = nullptr;
    kernel::TcpEndpoint* connection = nullptr;
    std::size_t response_size = 1024;  ///< the static file (< 1 KB HTML)
    sim::Duration service_time = sim::microseconds(3);
  };

  explicit HttpServer(Config config);

  std::uint64_t requests_served() const noexcept { return served_; }

 private:
  void on_stream_data(std::span<const std::uint8_t> data);
  void process_next();

  Config cfg_;
  MessageFramer framer_;
  std::deque<std::vector<std::uint8_t>> pending_;
  bool busy_ = false;
  std::uint64_t served_ = 0;
};

/// wrk2-style constant-throughput HTTP client on one connection.
class Wrk2Client {
 public:
  struct Config {
    kernel::Host* host = nullptr;
    overlay::Netns* ns = nullptr;
    kernel::Cpu* cpu = nullptr;
    kernel::TcpEndpoint* connection = nullptr;
    double rate_rps = 1000.0;
    std::size_t request_size = 128;
    /// Pacing jitter fraction (see SockperfClient::Config::jitter).
    double jitter = 0.2;
    std::uint64_t seed = 1;
    sim::Time start_at = 0;
    sim::Time stop_at = sim::seconds(1);
  };

  Wrk2Client(sim::Simulator& sim, Config config);

  void start();

  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t completed() const noexcept { return completed_; }

  /// Response latency from the scheduled send instant (wrk2 semantics).
  const stats::Histogram& latency() const noexcept { return latency_; }

  /// Achieved requests per second over [start_at, stop_at].
  double requests_per_second() const noexcept;

 private:
  void tick();
  void on_stream_data(std::span<const std::uint8_t> data);

  sim::Simulator& sim_;
  Config cfg_;
  MessageFramer framer_;
  sim::Duration interval_ = 0;
  sim::Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t completed_ = 0;
  stats::Histogram latency_;
};

}  // namespace prism::apps
