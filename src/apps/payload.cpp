#include "apps/payload.h"

#include <stdexcept>

namespace prism::apps {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> d, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[at + static_cast<size_t>(i)];
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_probe(const Probe& probe,
                                       std::size_t payload_size) {
  std::vector<std::uint8_t> out;
  encode_probe_into(probe, payload_size, out);
  return out;
}

void encode_probe_into(const Probe& probe, std::size_t payload_size,
                       std::vector<std::uint8_t>& out) {
  if (payload_size < kProbeSize) {
    throw std::invalid_argument("encode_probe: payload smaller than probe");
  }
  out.clear();
  out.reserve(payload_size);
  put_u64(out, probe.seq);
  put_u64(out, static_cast<std::uint64_t>(probe.sent_at));
  out.push_back(probe.reply ? 1 : 0);
  out.resize(payload_size, 0);
}

std::optional<Probe> decode_probe(std::span<const std::uint8_t> payload) {
  if (payload.size() < kProbeSize) return std::nullopt;
  Probe p;
  p.seq = get_u64(payload, 0);
  p.sent_at = static_cast<sim::Time>(get_u64(payload, 8));
  p.reply = payload[16] != 0;
  return p;
}

void MessageFramer::push(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<std::vector<std::uint8_t>> MessageFramer::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const std::uint32_t len =
      (static_cast<std::uint32_t>(buffer_[0]) << 24) |
      (static_cast<std::uint32_t>(buffer_[1]) << 16) |
      (static_cast<std::uint32_t>(buffer_[2]) << 8) |
      static_cast<std::uint32_t>(buffer_[3]);
  if (buffer_.size() < 4u + len) return std::nullopt;
  std::vector<std::uint8_t> body(buffer_.begin() + 4,
                                 buffer_.begin() + 4 + len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
  return body;
}

std::vector<std::uint8_t> MessageFramer::frame(
    std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + body.size());
  const auto len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace prism::apps
