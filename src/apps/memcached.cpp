#include "apps/memcached.h"

#include <cassert>

namespace prism::apps {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> d, std::size_t at) {
  return static_cast<std::uint16_t>((d[at] << 8) | d[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t at) {
  return (static_cast<std::uint32_t>(get_u16(d, at)) << 16) |
         get_u16(d, at + 2);
}

}  // namespace

std::vector<std::uint8_t> encode_kv_request(const KvRequest& req) {
  std::vector<std::uint8_t> out = encode_probe(req.probe, kProbeSize);
  out.push_back(static_cast<std::uint8_t>(req.op));
  put_u16(out, static_cast<std::uint16_t>(req.key.size()));
  out.insert(out.end(), req.key.begin(), req.key.end());
  put_u32(out, static_cast<std::uint32_t>(req.value.size()));
  out.insert(out.end(), req.value.begin(), req.value.end());
  return out;
}

std::optional<KvRequest> decode_kv_request(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kProbeSize + 1 + 2) return std::nullopt;
  KvRequest req;
  req.probe = *decode_probe(bytes);
  std::size_t at = kProbeSize;
  req.op = static_cast<KvOp>(bytes[at++]);
  const std::uint16_t keylen = get_u16(bytes, at);
  at += 2;
  if (bytes.size() < at + keylen + 4) return std::nullopt;
  req.key.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                 bytes.begin() + static_cast<std::ptrdiff_t>(at + keylen));
  at += keylen;
  const std::uint32_t vallen = get_u32(bytes, at);
  at += 4;
  if (bytes.size() < at + vallen) return std::nullopt;
  req.value.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() +
                       static_cast<std::ptrdiff_t>(at + vallen));
  return req;
}

std::vector<std::uint8_t> encode_kv_response(const KvResponse& resp) {
  std::vector<std::uint8_t> out = encode_probe(resp.probe, kProbeSize);
  out.push_back(static_cast<std::uint8_t>(resp.status));
  put_u32(out, static_cast<std::uint32_t>(resp.value.size()));
  out.insert(out.end(), resp.value.begin(), resp.value.end());
  return out;
}

std::optional<KvResponse> decode_kv_response(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kProbeSize + 1 + 4) return std::nullopt;
  KvResponse resp;
  resp.probe = *decode_probe(bytes);
  std::size_t at = kProbeSize;
  resp.status = static_cast<KvStatus>(bytes[at++]);
  const std::uint32_t vallen = get_u32(bytes, at);
  at += 4;
  if (bytes.size() < at + vallen) return std::nullopt;
  resp.value.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                    bytes.begin() +
                        static_cast<std::ptrdiff_t>(at + vallen));
  return resp;
}

MemcachedServer::MemcachedServer(sim::Simulator& sim, Config config)
    : sim_(sim), cfg_(config) {
  assert(cfg_.host && cfg_.ns && cfg_.cpu && "MemcachedServer: bad config");
  sock_ = &cfg_.host->udp_bind(*cfg_.ns, cfg_.port);
  sock_->set_on_readable([this] {
    if (!busy_) {
      busy_ = true;
      begin_drain(/*wakeup=*/true);
    }
  });
}

std::string MemcachedServer::key_name(int index) {
  return "key" + std::to_string(index);
}

void MemcachedServer::preload(int count, std::size_t value_size) {
  for (int i = 0; i < count; ++i) {
    store_[key_name(i)] = std::vector<std::uint8_t>(
        value_size, static_cast<std::uint8_t>(i));
  }
}

void MemcachedServer::begin_drain(bool wakeup) {
  const auto& cost = cfg_.host->cost();
  sim::Duration c = cost.syscall_cost;
  if (wakeup) c += cost.wakeup_cost;
  cfg_.cpu->run_task(c, [this] { finish_one(); });
}

void MemcachedServer::finish_one() {
  auto d = sock_->try_recv();
  if (!d) {
    busy_ = false;
    return;
  }
  const auto& cost = cfg_.host->cost();
  sim::Duration work = cost.copy_cost(d->payload.size());

  const auto req = decode_kv_request(d->payload);
  if (req) {
    KvResponse resp;
    resp.probe = req->probe;
    if (req->op == KvOp::kGet) {
      ++gets_;
      work += cfg_.get_service;
      const auto it = store_.find(req->key);
      if (it == store_.end()) {
        ++misses_;
        resp.status = KvStatus::kMiss;
      } else {
        resp.status = KvStatus::kHit;
        resp.value = it->second;
      }
    } else {
      ++sets_;
      work += cfg_.set_service;
      store_[req->key] = req->value;
      resp.status = KvStatus::kStored;
    }
    const auto src_ip = d->src_ip;
    const auto src_port = d->src_port;
    // Service work, then the response send (its own syscall).
    cfg_.cpu->run_task(work, [this, resp = std::move(resp), src_ip,
                              src_port] {
      cfg_.host->udp_send(*cfg_.ns, *cfg_.cpu, cfg_.port, src_ip, src_port,
                          encode_kv_response(resp));
      if (sock_->has_data()) {
        begin_drain(/*wakeup=*/false);
      } else {
        busy_ = false;
      }
    });
    return;
  }
  // Malformed request: drop and continue.
  cfg_.cpu->run_task(work, [this] {
    if (sock_->has_data()) {
      begin_drain(/*wakeup=*/false);
    } else {
      busy_ = false;
    }
  });
}

}  // namespace prism::apps
