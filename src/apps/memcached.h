// Memcached-style key-value store server and wire protocol (paper §V-C1).
//
// A real in-memory store behind a compact binary request/response protocol
// carried over UDP (memcached's UDP transport). Requests and responses
// embed the measurement probe so the client can attribute latency
// end-to-end through the real byte path.
//
// Request  body: [probe(24)] [op(1)] [keylen(2)] [key] [vallen(4)] [value]
// Response body: [probe(24)] [status(1)] [vallen(4)] [value]
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/payload.h"
#include "kernel/host.h"

namespace prism::apps {

enum class KvOp : std::uint8_t { kGet = 0, kSet = 1 };
enum class KvStatus : std::uint8_t {
  kHit = 0,
  kMiss = 1,
  kStored = 2,
  kError = 3,
};

struct KvRequest {
  Probe probe;
  KvOp op = KvOp::kGet;
  std::string key;
  std::vector<std::uint8_t> value;  // set only
};

struct KvResponse {
  Probe probe;
  KvStatus status = KvStatus::kError;
  std::vector<std::uint8_t> value;  // get-hit only
};

std::vector<std::uint8_t> encode_kv_request(const KvRequest& req);
std::optional<KvRequest> decode_kv_request(
    std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> encode_kv_response(const KvResponse& resp);
std::optional<KvResponse> decode_kv_response(
    std::span<const std::uint8_t> bytes);

/// The server: UDP request/response over a real hash-map store.
class MemcachedServer {
 public:
  struct Config {
    kernel::Host* host = nullptr;
    overlay::Netns* ns = nullptr;
    kernel::Cpu* cpu = nullptr;
    std::uint16_t port = 11211;
    sim::Duration get_service = sim::nanoseconds(1500);
    sim::Duration set_service = sim::nanoseconds(2000);
  };

  MemcachedServer(sim::Simulator& sim, Config config);

  /// Pre-populates keys "key<0..count-1>" with `value_size`-byte values
  /// (memaslap's warm-up phase, done out of band).
  void preload(int count, std::size_t value_size);

  std::uint64_t gets() const noexcept { return gets_; }
  std::uint64_t sets() const noexcept { return sets_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::size_t store_size() const noexcept { return store_.size(); }

  /// Canonical key naming shared with the client.
  static std::string key_name(int index);

 private:
  void begin_drain(bool wakeup);
  void finish_one();

  sim::Simulator& sim_;
  Config cfg_;
  kernel::UdpSocket* sock_;
  bool busy_ = false;
  std::unordered_map<std::string, std::vector<std::uint8_t>> store_;
  std::uint64_t gets_ = 0;
  std::uint64_t sets_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace prism::apps
