#include "apps/sockperf.h"

#include <cassert>
#include <stdexcept>

namespace prism::apps {

// ------------------------------------------------------- SockperfServer

SockperfServer::SockperfServer(sim::Simulator& sim, Config config)
    : sim_(sim), cfg_(config) {
  assert(cfg_.host && cfg_.ns && cfg_.cpu && "SockperfServer: bad config");
  sock_ = &cfg_.host->udp_bind(*cfg_.ns, cfg_.port);
  sock_->set_on_readable([this] {
    if (!busy_) {
      busy_ = true;
      begin_drain(/*wakeup=*/true);
    }
  });
}

void SockperfServer::begin_drain(bool wakeup) {
  const auto& cost = cfg_.host->cost();
  // recvfrom: (wakeup when blocked) + syscall + app work. The payload
  // copy is charged after the dequeue, when its size is known.
  sim::Duration c = cost.syscall_cost + cfg_.service_time;
  if (wakeup) c += cost.wakeup_cost;
  cfg_.cpu->run_task(c, [this] { finish_one(); });
}

void SockperfServer::finish_one() {
  auto d = sock_->try_recv();
  if (!d) {
    busy_ = false;
    return;
  }
  ++received_;
  // Copy cost for the actual payload, charged as part of this request's
  // handling (the recv syscall's copy_to_user).
  const auto& cost = cfg_.host->cost();
  const sim::Duration copy = cost.copy_cost(d->payload.size());

  const auto probe = decode_probe(d->payload);
  const bool reply = probe.has_value() && probe->reply;
  if (reply) {
    ++echoed_;
    // sendto with the same payload (sockperf echoes verbatim).
    cfg_.host->udp_send(*cfg_.ns, *cfg_.cpu, cfg_.port, d->src_ip,
                        d->src_port, d->payload);
  }
  // Account the copy, then continue draining or go back to blocking.
  cfg_.cpu->run_task(copy, [this] {
    if (sock_->has_data()) {
      begin_drain(/*wakeup=*/false);
    } else {
      busy_ = false;
    }
  });
}

// ------------------------------------------------------- SockperfClient

SockperfClient::SockperfClient(sim::Simulator& sim, Config config)
    : sim_(sim), cfg_(std::move(config)), rng_(config.seed) {
  assert(cfg_.host && cfg_.ns && !cfg_.cpus.empty() &&
         "SockperfClient: bad config");
  if (cfg_.rate_pps <= 0) {
    throw std::invalid_argument("SockperfClient: rate must be positive");
  }
  if (cfg_.payload_size < kProbeSize) {
    throw std::invalid_argument("SockperfClient: payload too small");
  }
  if (cfg_.burst < 1) {
    throw std::invalid_argument("SockperfClient: burst must be >= 1");
  }
  const double per_thread =
      cfg_.rate_pps / static_cast<double>(cfg_.cpus.size());
  interval_ =
      static_cast<sim::Duration>(1e9 * cfg_.burst / per_thread);
  for (std::size_t i = 0; i < cfg_.cpus.size(); ++i) {
    Thread t;
    t.cpu = cfg_.cpus[i];
    t.src_port =
        static_cast<std::uint16_t>(cfg_.base_src_port + i);
    if (cfg_.reply_every > 0) {
      t.sock = &cfg_.host->udp_bind(*cfg_.ns, t.src_port);
    }
    threads_.push_back(t);
  }
  // RX notification wiring (needs stable Thread storage — done above).
  for (auto& t : threads_) {
    if (t.sock != nullptr) {
      Thread* tp = &t;
      t.sock->set_on_readable([this, tp] {
        if (!tp->rx_busy) {
          tp->rx_busy = true;
          begin_rx(*tp, /*wakeup=*/true);
        }
      });
    }
  }
}

void SockperfClient::start() {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    // Stagger threads so aggregate sends are evenly spaced.
    const sim::Time offset =
        static_cast<sim::Time>(i) * interval_ /
        static_cast<sim::Time>(threads_.size());
    sim_.schedule_at(cfg_.start_at + offset, [this, i] { tick(i, 0); });
  }
}

void SockperfClient::tick(std::size_t thread_index, std::uint64_t n) {
  Thread& t = threads_[thread_index];
  if (sim_.now() >= cfg_.stop_at) return;
  sim::Duration gap = interval_;
  if (cfg_.jitter > 0) {
    gap = static_cast<sim::Duration>(
        static_cast<double>(interval_) *
        rng_.uniform(1.0 - cfg_.jitter, 1.0 + cfg_.jitter));
    if (gap < 1) gap = 1;
  }
  sim_.schedule(gap, [this, thread_index, n] {
    tick(thread_index, n + 1);
  });
  if (t.outstanding >= cfg_.max_outstanding) {
    skipped_ += static_cast<std::uint64_t>(cfg_.burst);
    return;
  }
  for (int b = 0; b < cfg_.burst; ++b) {
    const std::uint64_t seq = t.next_seq++;
    const bool reply =
        cfg_.reply_every > 0 &&
        (seq % static_cast<std::uint64_t>(cfg_.reply_every)) == 0;
    ++sent_;
    send_probe(t, seq, reply);
    if (reply && cfg_.reply_timeout > 0) {
      t.pending.emplace(seq, PendingProbe{});
      arm_retry(thread_index, seq, /*attempt=*/0, cfg_.reply_timeout);
    }
  }
}

void SockperfClient::send_probe(Thread& t, std::uint64_t seq, bool reply) {
  Probe probe;
  probe.seq = seq;
  probe.sent_at = sim_.now();
  probe.reply = reply;
  ++t.outstanding;
  // udp_send copies the payload into the frame before returning, so the
  // scratch buffer is reusable immediately.
  encode_probe_into(probe, cfg_.payload_size, probe_scratch_);
  cfg_.host->udp_send(*cfg_.ns, *t.cpu, t.src_port, cfg_.dst_ip,
                      cfg_.dst_port, probe_scratch_,
                      [&t] { --t.outstanding; });
}

void SockperfClient::arm_retry(std::size_t thread_index, std::uint64_t seq,
                               int attempt, sim::Duration wait) {
  sim_.schedule(wait, [this, thread_index, seq, attempt] {
    on_reply_timeout(thread_index, seq, attempt);
  });
}

void SockperfClient::on_reply_timeout(std::size_t thread_index,
                                      std::uint64_t seq, int attempt) {
  Thread& t = threads_[thread_index];
  const auto it = t.pending.find(seq);
  if (it == t.pending.end()) return;           // echo arrived in time
  if (it->second.attempts != attempt) return;  // stale timer
  if (it->second.attempts >= cfg_.max_retries) {
    t.pending.erase(it);
    ++probe_timeouts_;
    return;
  }
  ++it->second.attempts;
  ++retransmits_;
  send_probe(t, seq, /*reply=*/true);
  // Exponential backoff: the wait doubles per attempt, capped.
  sim::Duration wait = cfg_.reply_timeout << it->second.attempts;
  if (wait > cfg_.max_backoff) wait = cfg_.max_backoff;
  if (wait < cfg_.reply_timeout) wait = cfg_.reply_timeout;  // overflow cap
  arm_retry(thread_index, seq, it->second.attempts, wait);
}

void SockperfClient::begin_rx(Thread& t, bool wakeup) {
  const auto& cost = cfg_.host->cost();
  sim::Duration c = cost.syscall_cost + cost.copy_cost(cfg_.payload_size);
  if (wakeup) c += cost.wakeup_cost;
  t.cpu->run_task(c, [this, &t] { finish_rx(t); });
}

void SockperfClient::finish_rx(Thread& t) {
  auto d = t.sock->try_recv();
  if (!d) {
    t.rx_busy = false;
    return;
  }
  if (const auto probe = decode_probe(d->payload)) {
    if (cfg_.reply_timeout > 0) {
      // With retransmission a seq can be echoed more than once; only the
      // first echo closes the probe and counts toward the measurement.
      const auto it = t.pending.find(probe->seq);
      if (it == t.pending.end()) {
        ++late_replies_;
      } else {
        t.pending.erase(it);
        ++replies_;
        latency_.record((sim_.now() - probe->sent_at) / 2);
      }
    } else {
      ++replies_;
      // sockperf reports one-way latency as RTT/2.
      latency_.record((sim_.now() - probe->sent_at) / 2);
    }
  }
  if (t.sock->has_data()) {
    begin_rx(t, /*wakeup=*/false);
  } else {
    t.rx_busy = false;
  }
}

// ---------------------------------------------------- SockperfTcpSender

SockperfTcpSender::SockperfTcpSender(sim::Simulator& sim, Config config)
    : sim_(sim), cfg_(config), rng_(config.seed) {
  assert(cfg_.endpoint && cfg_.cpu && "SockperfTcpSender: bad config");
  if (cfg_.rate_mps <= 0) {
    throw std::invalid_argument("SockperfTcpSender: rate must be positive");
  }
  interval_ = static_cast<sim::Duration>(1e9 / cfg_.rate_mps);
}

void SockperfTcpSender::start() {
  sim_.schedule_at(cfg_.start_at, [this] { tick(0); });
}

void SockperfTcpSender::tick(std::uint64_t n) {
  if (sim_.now() >= cfg_.stop_at) return;
  sim::Duration gap = interval_;
  if (cfg_.jitter > 0) {
    gap = static_cast<sim::Duration>(
        static_cast<double>(interval_) *
        rng_.uniform(1.0 - cfg_.jitter, 1.0 + cfg_.jitter));
    if (gap < 1) gap = 1;
  }
  sim_.schedule(gap, [this, n] { tick(n + 1); });
  if (cfg_.endpoint->unacked_bytes() > cfg_.max_unacked) {
    ++skipped_;
    return;
  }
  ++sent_;
  cfg_.endpoint->send(std::vector<std::uint8_t>(cfg_.message_size, 0xa5),
                      *cfg_.cpu);
}

// -------------------------------------------------------- TcpSinkServer

TcpSinkServer::TcpSinkServer(Config config) : cfg_(config) {
  assert(cfg_.endpoint && cfg_.cpu && cfg_.cost &&
         "TcpSinkServer: bad config");
  cfg_.endpoint->on_data = [this](std::span<const std::uint8_t> data,
                                  sim::Time) {
    bytes_ += data.size();
    // One read() per delivered chunk: syscall + copy.
    cfg_.cpu->run_task(
        cfg_.cost->syscall_cost + cfg_.cost->copy_cost(data.size()),
        [] {});
  };
}

}  // namespace prism::apps
