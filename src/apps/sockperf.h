// sockperf-style UDP workload generators (paper §V-A).
//
// The paper drives every microbenchmark with sockperf: a containerized
// echo server, constant-rate clients for background load (UDP throughput
// mode), and latency probes measured as RTT/2 at the client (ping-pong /
// under-load mode with sampled replies). These classes model those tools,
// charging realistic wakeup/syscall/copy costs on their CPUs so the
// application side of the latency path is part of the measurement.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "apps/payload.h"
#include "kernel/host.h"
#include "sim/rng.h"
#include "stats/histogram.h"

namespace prism::apps {

/// Echo/count server. Echoes payloads whose probe requests a reply
/// (sockperf --reply-every semantics), counts everything.
class SockperfServer {
 public:
  struct Config {
    kernel::Host* host = nullptr;
    overlay::Netns* ns = nullptr;  ///< namespace the server runs in
    kernel::Cpu* cpu = nullptr;    ///< application core
    std::uint16_t port = 11111;
    /// Per-request application work beyond syscalls.
    sim::Duration service_time = sim::nanoseconds(300);
  };

  SockperfServer(sim::Simulator& sim, Config config);

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t echoed() const noexcept { return echoed_; }
  kernel::UdpSocket& socket() noexcept { return *sock_; }

 private:
  void begin_drain(bool wakeup);
  void finish_one();

  sim::Simulator& sim_;
  Config cfg_;
  kernel::UdpSocket* sock_;
  bool busy_ = false;
  std::uint64_t received_ = 0;
  std::uint64_t echoed_ = 0;
};

/// Constant-rate UDP sender with optional sampled latency measurement.
///
/// One "thread" per configured CPU, each with its own source port (flow).
/// With reply_every == 1 and a single thread this is sockperf ping-pong;
/// with reply_every == 0 it is pure throughput background load; values in
/// between model the under-load latency mode.
class SockperfClient {
 public:
  struct Config {
    kernel::Host* host = nullptr;
    overlay::Netns* ns = nullptr;
    std::vector<kernel::Cpu*> cpus;  ///< one sender thread per CPU
    std::uint16_t base_src_port = 20000;
    net::Ipv4Addr dst_ip;
    std::uint16_t dst_port = 11111;
    double rate_pps = 1000.0;  ///< aggregate across threads
    std::size_t payload_size = 64;
    /// Packets per send burst (sockperf --burst; sendmmsg-style TX
    /// batching). Background throughput traffic leaves a real client in
    /// bursts, which is what fills deep per-stage batches at the
    /// receiver. 1 = evenly paced.
    int burst = 1;
    /// Request an echo every N packets; 0 = never.
    int reply_every = 0;
    /// Pacing jitter as a fraction of the tick interval (each gap is
    /// uniform in [1-jitter, 1+jitter] x interval). Real senders are
    /// never perfectly periodic; without jitter, periodic sources
    /// phase-lock against each other and latency distributions collapse
    /// into aliasing spikes.
    double jitter = 0.3;
    std::uint64_t seed = 1;
    sim::Time start_at = 0;
    sim::Time stop_at = sim::seconds(1);
    /// Ticks finding this many sends still queued on the CPU are skipped
    /// (a real sender blocks; an unbounded queue would distort timing).
    int max_outstanding = 256;
    /// Reply-probe resilience (container churn): when > 0, a probe whose
    /// requested echo has not arrived within this long retransmits with
    /// the same seq, doubling the wait each attempt up to max_backoff,
    /// at most max_retries times before the probe is abandoned.
    /// 0 = fire-and-forget (the pre-churn behavior).
    sim::Duration reply_timeout = 0;
    int max_retries = 3;
    sim::Duration max_backoff = sim::milliseconds(10);
  };

  SockperfClient(sim::Simulator& sim, Config config);

  /// Schedules the send ticks. Call once before Simulator::run.
  void start();

  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t skipped() const noexcept { return skipped_; }
  std::uint64_t replies() const noexcept { return replies_; }
  /// Timeout-driven resends (each is one extra udp_send syscall, so
  /// total sends on the wire side = sent() + retransmits()).
  std::uint64_t retransmits() const noexcept { return retransmits_; }
  /// Probes abandoned after max_retries unanswered retransmits.
  std::uint64_t probe_timeouts() const noexcept { return probe_timeouts_; }
  /// Echoes that arrived after their probe was abandoned (or for a seq
  /// answered once already) — counted, never measured.
  std::uint64_t late_replies() const noexcept { return late_replies_; }

  /// One-way latency (RTT/2) of replied probes, in nanoseconds.
  const stats::Histogram& latency() const noexcept { return latency_; }

 private:
  /// Retry state for one awaiting-echo probe (reply_timeout > 0 only).
  struct PendingProbe {
    int attempts = 0;  ///< retransmits performed so far
  };

  struct Thread {
    kernel::Cpu* cpu = nullptr;
    std::uint16_t src_port = 0;
    kernel::UdpSocket* sock = nullptr;  ///< only when replies expected
    std::uint64_t next_seq = 0;
    int outstanding = 0;
    bool rx_busy = false;
    std::unordered_map<std::uint64_t, PendingProbe> pending;
  };

  void tick(std::size_t thread_index, std::uint64_t n);
  void send_probe(Thread& t, std::uint64_t seq, bool reply);
  void arm_retry(std::size_t thread_index, std::uint64_t seq, int attempt,
                 sim::Duration wait);
  void on_reply_timeout(std::size_t thread_index, std::uint64_t seq,
                        int attempt);
  void begin_rx(Thread& t, bool wakeup);
  void finish_rx(Thread& t);

  sim::Simulator& sim_;
  Config cfg_;
  std::vector<Thread> threads_;
  /// Probe-encoding scratch, reused across sends (udp_send copies).
  std::vector<std::uint8_t> probe_scratch_;
  sim::Duration interval_ = 0;  ///< per-thread tick interval
  sim::Rng rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t replies_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t probe_timeouts_ = 0;
  std::uint64_t late_replies_ = 0;
  stats::Histogram latency_;
};

/// Constant-rate TCP bulk sender (sockperf TCP throughput mode): sends
/// `message_size`-byte messages that TSO segments into MTU frames — the
/// paper's Fig. 13 background workload.
class SockperfTcpSender {
 public:
  struct Config {
    kernel::TcpEndpoint* endpoint = nullptr;
    kernel::Cpu* cpu = nullptr;
    double rate_mps = 20000.0;  ///< messages per second
    std::size_t message_size = 64 * 1024;
    /// Pacing jitter fraction (see SockperfClient::Config::jitter).
    double jitter = 0.2;
    std::uint64_t seed = 1;
    sim::Time start_at = 0;
    sim::Time stop_at = sim::seconds(1);
    /// Skip ticks while more than this many bytes are unacknowledged
    /// (socket send-buffer backpressure).
    std::size_t max_unacked = 4 * 1024 * 1024;
  };

  SockperfTcpSender(sim::Simulator& sim, Config config);

  void start();

  std::uint64_t sent_messages() const noexcept { return sent_; }
  std::uint64_t skipped() const noexcept { return skipped_; }

 private:
  void tick(std::uint64_t n);

  sim::Simulator& sim_;
  Config cfg_;
  sim::Duration interval_ = 0;
  sim::Rng rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t skipped_ = 0;
};

/// Receiving application for TCP bulk traffic: reads the stream, charging
/// per-read syscall/copy costs on its CPU.
class TcpSinkServer {
 public:
  struct Config {
    kernel::TcpEndpoint* endpoint = nullptr;
    kernel::Cpu* cpu = nullptr;
    const kernel::CostModel* cost = nullptr;
  };

  explicit TcpSinkServer(Config config);

  std::uint64_t bytes_received() const noexcept { return bytes_; }

 private:
  Config cfg_;
  std::uint64_t bytes_ = 0;
};

}  // namespace prism::apps
