// Runtime control interface, modelled on PRISM's procfs knobs.
//
// The real implementation exposes /proc files through which users add
// high-priority (IP, port) pairs and select the operating mode at runtime
// (paper §IV-A). This class emulates those files with string reads and
// writes so that examples and tests exercise the same dynamic-control
// surface.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/napi.h"
#include "prism/priority_db.h"

namespace prism::prism {

/// String-command front end over a PriorityDb and a mode switch.
///
/// Supported "files":
///   prism/priority — writes: "add <ip> <port> [level]",
///                    "del <ip> <port>", "clear"; read returns the entry
///                    count. The optional level (1..kNumPriorityLevels-1,
///                    default 1) selects among the multiple priority
///                    levels this implementation adds beyond the paper's
///                    two.
///   prism/mode     — writes: "vanilla", "batch", "sync", "queues";
///                    read returns the current mode name.
///   prism/telemetry/index — read-only: every readable path of this
///                    interface (built-ins plus registered files), one
///                    per line, sorted — `ls /proc/prism` for tooling
///                    that discovers endpoints instead of hard-coding
///                    them.
class ProcInterface {
 public:
  ProcInterface(PriorityDb& db,
                std::function<void(kernel::NapiMode)> set_mode,
                std::function<kernel::NapiMode()> get_mode);

  /// Emulates `echo "<value>" > /proc/<path>`. Returns false on unknown
  /// path or malformed value (a real write would return -EINVAL).
  bool write(std::string_view path, std::string_view value);

  /// Emulates reading /proc/<path>. Returns an empty string for unknown
  /// paths.
  std::string read(std::string_view path) const;

  /// Registers a read-only synthetic file (e.g. "net/softnet_stat" backed
  /// by the host's telemetry). Re-registering a path replaces its reader;
  /// writes to registered files fail like a read-only procfs entry.
  void register_file(std::string path,
                     std::function<std::string()> reader);

  /// Every readable path, sorted: the built-in files plus everything
  /// registered via register_file(). The "prism/telemetry/index" read
  /// renders exactly this list.
  std::vector<std::string> paths() const;

 private:
  PriorityDb& db_;
  std::function<void(kernel::NapiMode)> set_mode_;
  std::function<kernel::NapiMode()> get_mode_;
  std::map<std::string, std::function<std::string()>, std::less<>> files_;
};

}  // namespace prism::prism
