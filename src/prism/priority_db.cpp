#include "prism/priority_db.h"

#include <algorithm>

#include "net/headers.h"

namespace prism::prism {

void PriorityDb::add(net::Ipv4Addr ip, std::uint16_t port, int level) {
  level = std::clamp(level, 1, kernel::kNumPriorityLevels - 1);
  int& slot = entries_[key(ip, port)];
  if (slot == level) return;  // no-op re-add: classification unchanged
  slot = level;
  bump();
}

bool PriorityDb::remove(net::Ipv4Addr ip, std::uint16_t port) {
  if (entries_.erase(key(ip, port)) == 0) return false;
  bump();
  return true;
}

bool PriorityDb::contains(net::Ipv4Addr ip, std::uint16_t port) const {
  return entries_.contains(key(ip, port));
}

int PriorityDb::level_of(net::Ipv4Addr ip, std::uint16_t port) const {
  const auto it = entries_.find(key(ip, port));
  return it == entries_.end() ? 0 : it->second;
}

int PriorityDb::match(const net::ParsedFrame& frame) const {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  if (frame.udp) {
    sport = frame.udp->src_port;
    dport = frame.udp->dst_port;
  } else if (frame.tcp) {
    sport = frame.tcp->src_port;
    dport = frame.tcp->dst_port;
  }
  return std::max(level_of(frame.ip.src, sport),
                  level_of(frame.ip.dst, dport));
}

int PriorityDb::classify(const net::ParsedFrame& outer,
                         const net::ParsedFrame* inner) const {
  if (entries_.empty()) return 0;
  int level = match(outer);
  if (inner) level = std::max(level, match(*inner));
  return level;
}

int PriorityDb::classify(std::span<const std::uint8_t> bytes) const {
  if (entries_.empty()) return 0;
  const auto outer = net::parse_frame(bytes);
  if (!outer) return 0;
  int level = match(*outer);
  if (!outer->is_vxlan()) return level;
  // Peek through the encapsulation at the inner frame.
  if (outer->l4_payload.size() < net::VxlanHeader::kSize) return level;
  if (!net::VxlanHeader::parse(outer->l4_payload)) return level;
  const auto inner =
      net::parse_frame(outer->l4_payload.subspan(net::VxlanHeader::kSize));
  if (inner) level = std::max(level, match(*inner));
  return level;
}

}  // namespace prism::prism
