#include "prism/proc_interface.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace prism::prism {

namespace {

constexpr std::string_view kPriorityPath = "prism/priority";
constexpr std::string_view kModePath = "prism/mode";
constexpr std::string_view kIndexPath = "prism/telemetry/index";

}  // namespace

ProcInterface::ProcInterface(PriorityDb& db,
                             std::function<void(kernel::NapiMode)> set_mode,
                             std::function<kernel::NapiMode()> get_mode)
    : db_(db), set_mode_(std::move(set_mode)),
      get_mode_(std::move(get_mode)) {}

bool ProcInterface::write(std::string_view path, std::string_view value) {
  if (path == kModePath) {
    if (value == "vanilla") {
      set_mode_(kernel::NapiMode::kVanilla);
    } else if (value == "batch") {
      set_mode_(kernel::NapiMode::kPrismBatch);
    } else if (value == "sync") {
      set_mode_(kernel::NapiMode::kPrismSync);
    } else if (value == "queues") {
      set_mode_(kernel::NapiMode::kPrismQueues);
    } else {
      return false;
    }
    return true;
  }
  if (path == kPriorityPath) {
    std::istringstream in{std::string(value)};
    std::string op;
    in >> op;
    if (op == "clear") {
      db_.clear();
      return true;
    }
    std::string ip_text;
    int port = -1;
    in >> ip_text >> port;
    if (in.fail() || port < 0 || port > 0xffff) return false;
    net::Ipv4Addr ip;
    try {
      ip = net::Ipv4Addr::parse(ip_text);
    } catch (const std::invalid_argument&) {
      return false;
    }
    if (op == "add") {
      int level = 1;  // optional trailing level; default matches paper
      in >> level;
      if (in.fail()) level = 1;
      if (level < 1 || level >= kernel::kNumPriorityLevels) return false;
      db_.add(ip, static_cast<std::uint16_t>(port), level);
      return true;
    }
    if (op == "del") {
      return db_.remove(ip, static_cast<std::uint16_t>(port));
    }
    return false;
  }
  return false;
}

std::string ProcInterface::read(std::string_view path) const {
  if (path == kModePath) {
    switch (get_mode_()) {
      case kernel::NapiMode::kVanilla:
        return "vanilla";
      case kernel::NapiMode::kPrismBatch:
        return "batch";
      case kernel::NapiMode::kPrismSync:
        return "sync";
      case kernel::NapiMode::kPrismQueues:
        return "queues";
    }
    return "";
  }
  if (path == kPriorityPath) {
    return std::to_string(db_.size());
  }
  if (path == kIndexPath) {
    // Built-in (not registered) so a registered reader can never shadow
    // or omit it; computed per read so late register_file calls show up.
    std::string out;
    for (const std::string& p : paths()) {
      out += p;
      out += '\n';
    }
    return out;
  }
  if (const auto it = files_.find(path); it != files_.end()) {
    return it->second();
  }
  return "";
}

void ProcInterface::register_file(std::string path,
                                  std::function<std::string()> reader) {
  files_[std::move(path)] = std::move(reader);
}

std::vector<std::string> ProcInterface::paths() const {
  std::vector<std::string> out{std::string(kModePath),
                               std::string(kPriorityPath),
                               std::string(kIndexPath)};
  for (const auto& [path, reader] : files_) out.push_back(path);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace prism::prism
