// PRISM's global high-priority flow database.
//
// The paper separates mechanism from policy (§IV-A): PRISM provides the
// lookup, users decide which (IP, port) pairs are high priority and can
// change the set at runtime. The database is consulted exactly once per
// packet, when the skb is allocated in the physical driver (stage 1), and
// the result is cached in the skb's priority field for all later stages.
//
// Entries carry a priority level (1..kNumPriorityLevels-1). The paper's
// prototype is two-level (every entry level 1); multiple levels implement
// its §VII-3 future work.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>

#include "kernel/napi.h"
#include "net/ip.h"
#include "net/packet.h"

namespace prism::prism {

/// Runtime-mutable map of (IP, port) endpoints to priority levels.
class PriorityDb {
 public:
  /// Marks flows touching (ip, port) — as either source or destination —
  /// with `level` (clamped to [1, kNumPriorityLevels-1]).
  void add(net::Ipv4Addr ip, std::uint16_t port, int level = 1);

  /// Removes one entry. Returns false if it was not present.
  bool remove(net::Ipv4Addr ip, std::uint16_t port);

  void clear() {
    if (entries_.empty()) return;
    entries_.clear();
    bump();
  }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Monotonic mutation counter, bumped by every add/remove/clear that
  /// changes the table. Cached classifications (the overlay flow cache)
  /// are only valid while this stands still.
  std::uint64_t version() const noexcept { return version_; }

  /// Called after every table change. One hook per database; the host
  /// installs it to invalidate the overlay flow cache.
  void set_mutation_hook(std::function<void()> hook) {
    mutation_hook_ = std::move(hook);
  }

  bool contains(net::Ipv4Addr ip, std::uint16_t port) const;

  /// Priority level of (ip, port); 0 if absent.
  int level_of(net::Ipv4Addr ip, std::uint16_t port) const;

  /// Highest level matched by either endpoint of the parsed headers
  /// (0 = no match).
  int match(const net::ParsedFrame& frame) const;

  /// Full per-packet classification as performed at skb allocation:
  /// checks the outer headers and, for VXLAN-encapsulated frames, the
  /// inner headers (the kernel's flow dissector peeks through the
  /// encapsulation the same way). Returns the priority level; malformed
  /// frames are level 0.
  int classify(std::span<const std::uint8_t> frame) const;

  /// Classification over headers the caller already parsed (the hot RX
  /// path parses each frame exactly once and shares the result). `inner`
  /// is the decapsulated frame for VXLAN packets, nullptr otherwise.
  int classify(const net::ParsedFrame& outer,
               const net::ParsedFrame* inner) const;

 private:
  struct Key {
    std::uint64_t v;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.v);
    }
  };
  static Key key(net::Ipv4Addr ip, std::uint16_t port) noexcept {
    return Key{(std::uint64_t{ip.value} << 16) | port};
  }

  void bump() {
    ++version_;
    if (mutation_hook_) mutation_hook_();
  }

  std::unordered_map<Key, int, KeyHash> entries_;
  std::uint64_t version_ = 0;
  std::function<void()> mutation_hook_;
};

}  // namespace prism::prism
