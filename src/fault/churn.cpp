#include "fault/churn.h"

#include <algorithm>
#include <tuple>

namespace prism::fault {

const char* churn_kind_name(ChurnKind k) noexcept {
  switch (k) {
    case ChurnKind::kStop:
      return "stop";
    case ChurnKind::kRestart:
      return "restart";
    case ChurnKind::kMigrate:
      return "migrate";
  }
  return "unknown";
}

void ChurnPlan::configure(const ChurnConfig& cfg) {
  cfg_ = cfg;
  events_.clear();
  if (cfg.horizon <= cfg.start || cfg.disruptions_per_container <= 0) {
    return;
  }
  // A full cycle must fit in a slot: the disruption fires at the slot's
  // jittered offset, its teardown+restart completes within
  // drain + restart_delay, and min_gap separates it from the next slot.
  const sim::Duration cycle = cfg.drain + cfg.restart_delay + cfg.min_gap;
  const sim::Duration window = cfg.horizon - cfg.start;
  const auto slots = static_cast<sim::Duration>(
      cfg.disruptions_per_container);
  const sim::Duration slot = window / slots;
  if (slot <= cycle) return;  // window too tight: plan stays empty

  // One child RNG per container, split in a fixed order, so adding a
  // container (or changing another's draw count) never perturbs the
  // schedule of its neighbours.
  sim::Rng root(cfg.seed);
  for (int p = 0; p < cfg.pairs; ++p) {
    for (int c = 0; c < cfg.containers_per_pair; ++c) {
      sim::Rng rng = root.split();
      for (int d = 0; d < cfg.disruptions_per_container; ++d) {
        const sim::Time slot_base =
            cfg.start + static_cast<sim::Duration>(d) * slot;
        const sim::Duration jitter_range = slot - cycle;
        const auto jitter = static_cast<sim::Duration>(
            rng.uniform_int(0, jitter_range - 1));
        const sim::Time at = slot_base + jitter;
        if (rng.chance(cfg.migrate_fraction)) {
          events_.push_back(ChurnEvent{at, ChurnKind::kMigrate, p, c});
        } else {
          events_.push_back(ChurnEvent{at, ChurnKind::kStop, p, c});
          events_.push_back(ChurnEvent{
              at + cfg.drain + cfg.restart_delay, ChurnKind::kRestart, p,
              c});
        }
      }
    }
  }
  // Total order: time first, ties broken by (pair, container, kind) so
  // the application sequence is identical run to run.
  std::sort(events_.begin(), events_.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return std::tie(a.at, a.pair, a.container, a.kind) <
                     std::tie(b.at, b.pair, b.container, b.kind);
            });
}

std::size_t ChurnPlan::count(ChurnKind k) const noexcept {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == k) ++n;
  }
  return n;
}

}  // namespace prism::fault
