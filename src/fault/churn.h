// Seeded, deterministic container lifecycle churn plans.
//
// A ChurnPlan is to control-plane chaos what FaultPlan is to datapath
// faults: a pure function of (config, seed) that expands into a sorted
// schedule of container stop/restart/migrate events over a cluster. The
// plan only *decides*; applying the events to hosts is the harness's job
// (harness/churn.h), which does so between conservative-window barriers
// so the same plan yields byte-identical results at any thread count.
//
// Each disruption of a container is either a stop/restart cycle (kStop at
// t, kRestart at t + drain + restart_delay) or a migration (kMigrate at
// t: the container drains on its current host and a new incarnation comes
// up on the pair's other host immediately). Disruptions of one container
// never overlap: the slot layout guarantees a full cycle completes before
// the next disruption of the same container begins, and the final cycle
// finishes before `horizon`.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace prism::fault {

enum class ChurnKind : int { kStop = 0, kRestart, kMigrate };

const char* churn_kind_name(ChurnKind k) noexcept;

/// One scheduled lifecycle event. `pair` and `container` index into the
/// harness's registry of churnable containers; the plan itself knows
/// nothing about hosts or namespaces.
struct ChurnEvent {
  sim::Time at = 0;
  ChurnKind kind = ChurnKind::kStop;
  int pair = 0;
  int container = 0;
};

struct ChurnConfig {
  std::uint64_t seed = 1;

  /// Churn window: no event fires before `start` (workload warmup) and
  /// every cycle completes before `horizon` (conservation cooldown).
  sim::Time start = 0;
  sim::Time horizon = 0;

  /// Churnable-container grid (mirrors the harness's registration).
  int pairs = 1;
  int containers_per_pair = 1;

  /// Stop/restart-or-migrate cycles per container across the window.
  int disruptions_per_container = 1;

  /// Probability that a disruption migrates the container to the pair's
  /// other host instead of stop/restarting it in place.
  double migrate_fraction = 0.5;

  /// Teardown drain (Draining -> Dead) used for both stops and migrations.
  sim::Duration drain = sim::microseconds(200);

  /// Dead -> restart gap for stop/restart cycles.
  sim::Duration restart_delay = sim::microseconds(300);

  /// Minimum quiet time after a cycle completes before the same
  /// container's next disruption.
  sim::Duration min_gap = sim::microseconds(500);
};

/// Expands a ChurnConfig into a sorted, deterministic event schedule.
class ChurnPlan {
 public:
  ChurnPlan() = default;

  /// Rebuilds the schedule from `cfg`. The event sequence is a pure
  /// function of the config (including its seed).
  void configure(const ChurnConfig& cfg);

  const ChurnConfig& config() const noexcept { return cfg_; }
  const std::vector<ChurnEvent>& events() const noexcept { return events_; }

  /// Events of one kind (stops == restarts by construction).
  std::size_t count(ChurnKind k) const noexcept;

 private:
  ChurnConfig cfg_;
  std::vector<ChurnEvent> events_;
};

}  // namespace prism::fault
