// Seeded, deterministic fault injection for the packet pipeline.
//
// The paper's claims live on the overload edge — bounded rings, backlog
// drops, HoL blocking under flood — yet clean synthetic traffic never
// exercises the drop/corrupt/overflow paths. This layer injects faults at
// well-defined points (the wire, the NIC ring, VXLAN decap, the backlog,
// the allocators, the IRQ path) from a single seeded RNG so that a run's
// fault pattern is a pure function of (seed, arrival sequence): two runs
// with the same seed produce bit-identical counters, with pools on or off.
//
// Every injected fault is counted (FaultCounters) and every resulting drop
// is attributed to a reason and a priority class (DropLedger), so the
// conservation invariant
//
//     injected frames == delivered + sum over reasons of dropped
//
// can be asserted per class, to the packet (bench/stress_fault.cpp).
//
// Building with -DPRISM_FAULTS=OFF (cmake) defines PRISM_FAULTS_ENABLED=0:
// the classes still compile (so configs and proc files keep working) but
// every hot-path hook compiles down to nothing and FaultPlan::configure
// refuses to arm, keeping the no-fault fast path identical to a build that
// never heard of this header.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "telemetry/metrics.h"

#ifndef PRISM_FAULTS_ENABLED
#define PRISM_FAULTS_ENABLED 1
#endif

namespace prism::fault {

/// Priority classes tracked by the drop ledger. Matches
/// kernel::kNumPriorityLevels (static_assert in host.cpp keeps them in
/// lockstep without a kernel/ include cycle).
constexpr int kNumFaultClasses = 4;

/// Why a frame left the pipeline without reaching a socket. Covers both
/// injected faults and the stack's natural drop paths so the ledger is the
/// single place where "injected == delivered + dropped" is accounted.
enum class DropReason : int {
  kWire = 0,     // dropped on the wire (injected loss)
  kRingFull,     // NIC RX ring at capacity (natural or forced)
  kMalformed,    // failed parse / bad checksum / bad length at the NIC stage
  kUnroutable,   // parsed fine but no bridge / not addressed to this host
  kAllocFail,    // SkbPool or BufferPool refused an allocation
  kBacklogFull,  // per-CPU backlog (netdev_max_backlog) at capacity
  kFdbMiss,      // bridge FDB had no entry for the inner dst MAC
  kNullNetns,    // backlog stage got an skb with no destination namespace
  kChecksum,     // L4 checksum verification failed at socket delivery
  kNoSocket,     // no bound socket for the destination port
  kRcvbufFull,   // socket receive queue at capacity
  kFlowLimit,    // backlog admission: dominant flow on a congested queue
  kOverloadShed, // backlog admission: low-priority shed inside headroom
  kDeadNetns,    // destination namespace was draining or torn down
  kCount
};

constexpr int kNumDropReasons = static_cast<int>(DropReason::kCount);

/// Stable lowercase identifier ("ring_full", "checksum", ...) used for
/// telemetry counter names and the prism/faults proc file.
const char* drop_reason_name(DropReason r) noexcept;

/// Per-(reason, priority-class) drop accounting. One instance per host;
/// every drop path reports here in addition to its local counters.
class DropLedger {
 public:
  /// Classifies a raw frame into a priority class (used by drop paths that
  /// only hold bytes, e.g. the NIC ring). Unset => class 0.
  using Classifier = std::function<int(std::span<const std::uint8_t>)>;

  /// Observer invoked on every recorded drop (reason, class). The host
  /// wires this to LatencyLedger::record_dropped so mid-flight drops are
  /// counted as unattributed instead of leaking their stamps.
  using Observer = std::function<void(DropReason, int)>;

  void set_classifier(Classifier c) { classifier_ = std::move(c); }
  void set_observer(Observer o) { observer_ = std::move(o); }

  /// Maps frame bytes to a priority class via the classifier; 0 when no
  /// classifier is set or the frame is unclassifiable.
  int classify(std::span<const std::uint8_t> frame) const {
    if (!classifier_) return 0;
    return clamp_class(classifier_(frame));
  }

  /// Records one drop. `level` outside [0, kNumFaultClasses) clamps.
  void record(DropReason reason, int level) {
    const int cls = clamp_class(level);
    ++counts_[static_cast<std::size_t>(reason)][static_cast<std::size_t>(cls)];
    t_reasons_[static_cast<std::size_t>(reason)]->inc();
    if (observer_) observer_(reason, cls);
  }

  /// Records one drop of a frame known only by its bytes.
  void record_frame(DropReason reason, std::span<const std::uint8_t> frame) {
    record(reason, classify(frame));
  }

  std::uint64_t count(DropReason reason, int level) const noexcept {
    return counts_[static_cast<std::size_t>(reason)]
                  [static_cast<std::size_t>(clamp_class(level))];
  }

  /// Total drops for one reason across classes.
  std::uint64_t total(DropReason reason) const noexcept;

  /// Total drops for one class across reasons.
  std::uint64_t class_total(int level) const noexcept;

  /// Grand total across reasons and classes.
  std::uint64_t total_drops() const noexcept;

  void reset() noexcept;

  /// Registers one counter per reason under `prefix`
  /// (e.g. "faults.drop.ring_full").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

 private:
  static int clamp_class(int level) noexcept {
    if (level < 0) return 0;
    if (level >= kNumFaultClasses) return kNumFaultClasses - 1;
    return level;
  }

  std::array<std::array<std::uint64_t, kNumFaultClasses>, kNumDropReasons>
      counts_{};
  Classifier classifier_;
  Observer observer_;
  std::array<telemetry::Counter*, kNumDropReasons> t_reasons_ =
      sink_counters();

  static std::array<telemetry::Counter*, kNumDropReasons> sink_counters() {
    std::array<telemetry::Counter*, kNumDropReasons> a;
    a.fill(&telemetry::Counter::sink());
    return a;
  }
};

/// Fault rates and parameters. All rates are probabilities in [0, 1];
/// a rate of 0 means the corresponding RNG stream is never drawn from, so
/// enabling one fault mode does not perturb another's sequence.
struct FaultConfig {
  std::uint64_t seed = 1;

  // Wire faults, applied per frame at Nic::receive in a fixed order:
  // drop -> corrupt -> truncate -> duplicate -> reorder (drop short-circuits).
  double wire_drop_rate = 0.0;
  double wire_corrupt_rate = 0.0;
  double wire_truncate_rate = 0.0;
  double wire_duplicate_rate = 0.0;
  double wire_reorder_rate = 0.0;
  /// Extra delivery delay for reordered frames.
  sim::Duration reorder_delay = sim::microseconds(50);

  /// Bit-flip the decapsulated inner frame at VXLAN decap.
  double decap_corrupt_rate = 0.0;

  /// Restrict corruption (wire and decap) to the innermost L4 payload.
  /// Header bits stay intact, so classification still works and the
  /// corruption is caught by receive-side L4 checksum validation —
  /// conservation then holds per class. With this off, any bit of the
  /// frame may flip (headers included) and only total-level conservation
  /// is guaranteed: a frame whose classification bits were destroyed is
  /// counted in class 0.
  bool corrupt_payload_only = true;

  /// Probability that an RX ring push is treated as ring-full.
  double ring_full_rate = 0.0;
  /// Probability that a backlog enqueue is treated as backlog-full.
  double backlog_full_rate = 0.0;

  /// Allocation-failure injection (pool starvation).
  double skb_alloc_fail_rate = 0.0;
  double buf_alloc_fail_rate = 0.0;

  /// Delayed IRQ delivery against the NAPI mask/unmask logic.
  double irq_delay_rate = 0.0;
  sim::Duration irq_delay = sim::microseconds(20);

  /// IRQ storms: one hardware fire becomes 1 + irq_storm_extra handler
  /// invocations (spurious re-fires while the IRQ is masked).
  double irq_storm_rate = 0.0;
  int irq_storm_extra = 3;

  /// True when any fault mode has a nonzero rate.
  bool any_active() const noexcept {
    return wire_drop_rate > 0 || wire_corrupt_rate > 0 ||
           wire_truncate_rate > 0 || wire_duplicate_rate > 0 ||
           wire_reorder_rate > 0 || decap_corrupt_rate > 0 ||
           ring_full_rate > 0 || backlog_full_rate > 0 ||
           skb_alloc_fail_rate > 0 || buf_alloc_fail_rate > 0 ||
           irq_delay_rate > 0 || irq_storm_rate > 0;
  }
};

/// Injection counters: how many faults the plan actually fired. Paired
/// with the DropLedger these close the conservation equation (duplicates
/// add to the injected side; everything else adds to the dropped side or
/// is latency-only).
struct FaultCounters {
  std::uint64_t wire_drops = 0;
  std::uint64_t wire_corrupts = 0;
  std::uint64_t wire_truncates = 0;
  std::uint64_t wire_duplicates = 0;
  std::uint64_t wire_reorders = 0;
  std::uint64_t decap_corrupts = 0;
  std::uint64_t forced_ring_full = 0;
  std::uint64_t forced_backlog_full = 0;
  std::uint64_t skb_alloc_fails = 0;
  std::uint64_t buf_alloc_fails = 0;
  std::uint64_t irq_delays = 0;
  std::uint64_t irq_storm_irqs = 0;
  /// Duplicates by the duplicated frame's priority class — the injected
  /// side of per-class conservation.
  std::array<std::uint64_t, kNumFaultClasses> duplicates_per_class{};
};

/// The seeded fault decision engine. One per host; all injection points
/// consult it so the RNG stream is a deterministic function of the
/// host-local arrival sequence.
class FaultPlan {
 public:
  /// What Nic::receive should do with a frame after wire faults were
  /// applied. Corruption/truncation mutate the frame in place.
  struct WireActions {
    bool drop = false;
    bool duplicate = false;
    sim::Duration reorder_delay = 0;  // 0: deliver in order
  };

  FaultPlan() : rng_(1) {}

  /// Arms the plan: installs the config, reseeds the RNG, zeroes the
  /// counters. Under PRISM_FAULTS_ENABLED=0 the plan never arms.
  void configure(const FaultConfig& cfg);

  bool active() const noexcept { return active_; }
  const FaultConfig& config() const noexcept { return cfg_; }
  const FaultCounters& counters() const noexcept { return counters_; }

  /// Applies wire faults to `frame` in a fixed draw order. Only called on
  /// the ingress path of Nic::receive.
  WireActions on_wire_frame(net::PacketBuf& frame);

  /// Maybe bit-flips the decapsulated inner Ethernet frame. Returns true
  /// when a corruption was injected.
  bool maybe_corrupt_decap(std::span<std::uint8_t> inner);

  /// Forced-episode and starvation draws; true means "inject the fault".
  bool force_ring_full();
  bool force_backlog_full();
  bool skb_alloc_fails();
  bool buf_alloc_fails();

  /// Extra delay before the IRQ handler runs; 0 when no fault fired.
  sim::Duration irq_fire_delay();
  /// Number of spurious extra handler invocations; 0 when no storm fired.
  int irq_storm_extra_fires();

  /// Attributes one injected duplicate to `level` (clamped).
  void count_duplicate(int level) noexcept;

  std::uint64_t duplicates_for_class(int level) const noexcept {
    if (level < 0 || level >= kNumFaultClasses) return 0;
    return counters_.duplicates_per_class[static_cast<std::size_t>(level)];
  }

 private:
  /// Flips one RNG-chosen bit of `frame` (an Ethernet frame). When
  /// `payload_only`, descends through VXLAN to the innermost L4 payload
  /// and skips the frame entirely if it has none. Returns true when a bit
  /// was flipped.
  bool corrupt_bytes(std::span<std::uint8_t> frame, bool payload_only);

  FaultConfig cfg_;
  sim::Rng rng_;
  FaultCounters counters_;
  bool active_ = false;
};

/// The per-host fault bundle handed to every injection point.
struct FaultLayer {
  FaultPlan plan;
  DropLedger drops;
};

/// Renders the plan state, injection counters and drop ledger as one JSON
/// document (the "prism/faults" proc file). Deterministic: byte-identical
/// for identical counter state, so it doubles as the determinism-check
/// snapshot.
std::string faults_json(const FaultLayer& layer);

}  // namespace prism::fault
