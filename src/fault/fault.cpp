#include "fault/fault.h"

#include "net/headers.h"
#include "telemetry/json_writer.h"

namespace prism::fault {

const char* drop_reason_name(DropReason r) noexcept {
  switch (r) {
    case DropReason::kWire:
      return "wire";
    case DropReason::kRingFull:
      return "ring_full";
    case DropReason::kMalformed:
      return "malformed";
    case DropReason::kUnroutable:
      return "unroutable";
    case DropReason::kAllocFail:
      return "alloc_fail";
    case DropReason::kBacklogFull:
      return "backlog_full";
    case DropReason::kFdbMiss:
      return "fdb_miss";
    case DropReason::kNullNetns:
      return "null_netns";
    case DropReason::kChecksum:
      return "checksum";
    case DropReason::kNoSocket:
      return "no_socket";
    case DropReason::kRcvbufFull:
      return "rcvbuf_full";
    case DropReason::kFlowLimit:
      return "flow_limit";
    case DropReason::kOverloadShed:
      return "overload_shed";
    case DropReason::kDeadNetns:
      return "dead_netns";
    case DropReason::kCount:
      break;
  }
  return "unknown";
}

std::uint64_t DropLedger::total(DropReason reason) const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : counts_[static_cast<std::size_t>(reason)]) {
    sum += v;
  }
  return sum;
}

std::uint64_t DropLedger::class_total(int level) const noexcept {
  const int cls = clamp_class(level);
  std::uint64_t sum = 0;
  for (const auto& per_class : counts_) {
    sum += per_class[static_cast<std::size_t>(cls)];
  }
  return sum;
}

std::uint64_t DropLedger::total_drops() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& per_class : counts_) {
    for (const std::uint64_t v : per_class) sum += v;
  }
  return sum;
}

void DropLedger::reset() noexcept {
  for (auto& per_class : counts_) per_class.fill(0);
}

void DropLedger::bind_telemetry(telemetry::Registry& reg,
                                const std::string& prefix) {
  for (int r = 0; r < kNumDropReasons; ++r) {
    t_reasons_[static_cast<std::size_t>(r)] = &reg.counter(
        prefix + "drop." + drop_reason_name(static_cast<DropReason>(r)));
  }
}

void FaultPlan::configure(const FaultConfig& cfg) {
  cfg_ = cfg;
  rng_ = sim::Rng(cfg.seed);
  counters_ = FaultCounters{};
#if PRISM_FAULTS_ENABLED
  active_ = cfg.any_active();
#else
  active_ = false;
#endif
}

FaultPlan::WireActions FaultPlan::on_wire_frame(net::PacketBuf& frame) {
  WireActions act;
  if (!active_) return act;
  // Fixed draw order keeps the RNG stream a pure function of the arrival
  // sequence: a zero rate skips its draw entirely, so enabling one fault
  // mode never perturbs another's decisions.
  if (cfg_.wire_drop_rate > 0 && rng_.chance(cfg_.wire_drop_rate)) {
    ++counters_.wire_drops;
    act.drop = true;
    return act;
  }
  if (cfg_.wire_corrupt_rate > 0 && rng_.chance(cfg_.wire_corrupt_rate)) {
    if (corrupt_bytes(frame.mutable_bytes(), cfg_.corrupt_payload_only)) {
      ++counters_.wire_corrupts;
    }
  }
  if (cfg_.wire_truncate_rate > 0 && rng_.chance(cfg_.wire_truncate_rate)) {
    const std::size_t sz = frame.size();
    if (sz > 1) {
      const auto keep = static_cast<std::size_t>(
          rng_.uniform_int(1, static_cast<std::int64_t>(sz) - 1));
      frame.truncate(keep);
      ++counters_.wire_truncates;
    }
  }
  if (cfg_.wire_duplicate_rate > 0 && rng_.chance(cfg_.wire_duplicate_rate)) {
    ++counters_.wire_duplicates;
    act.duplicate = true;
  }
  if (cfg_.wire_reorder_rate > 0 && rng_.chance(cfg_.wire_reorder_rate)) {
    ++counters_.wire_reorders;
    act.reorder_delay = cfg_.reorder_delay;
  }
  return act;
}

bool FaultPlan::maybe_corrupt_decap(std::span<std::uint8_t> inner) {
  if (!active_ || cfg_.decap_corrupt_rate <= 0) return false;
  if (!rng_.chance(cfg_.decap_corrupt_rate)) return false;
  if (!corrupt_bytes(inner, cfg_.corrupt_payload_only)) return false;
  ++counters_.decap_corrupts;
  return true;
}

bool FaultPlan::force_ring_full() {
  if (!active_ || cfg_.ring_full_rate <= 0) return false;
  if (!rng_.chance(cfg_.ring_full_rate)) return false;
  ++counters_.forced_ring_full;
  return true;
}

bool FaultPlan::force_backlog_full() {
  if (!active_ || cfg_.backlog_full_rate <= 0) return false;
  if (!rng_.chance(cfg_.backlog_full_rate)) return false;
  ++counters_.forced_backlog_full;
  return true;
}

bool FaultPlan::skb_alloc_fails() {
  if (!active_ || cfg_.skb_alloc_fail_rate <= 0) return false;
  if (!rng_.chance(cfg_.skb_alloc_fail_rate)) return false;
  ++counters_.skb_alloc_fails;
  return true;
}

bool FaultPlan::buf_alloc_fails() {
  if (!active_ || cfg_.buf_alloc_fail_rate <= 0) return false;
  if (!rng_.chance(cfg_.buf_alloc_fail_rate)) return false;
  ++counters_.buf_alloc_fails;
  return true;
}

sim::Duration FaultPlan::irq_fire_delay() {
  if (!active_ || cfg_.irq_delay_rate <= 0) return 0;
  if (!rng_.chance(cfg_.irq_delay_rate)) return 0;
  ++counters_.irq_delays;
  return cfg_.irq_delay;
}

int FaultPlan::irq_storm_extra_fires() {
  if (!active_ || cfg_.irq_storm_rate <= 0) return 0;
  if (!rng_.chance(cfg_.irq_storm_rate)) return 0;
  counters_.irq_storm_irqs +=
      static_cast<std::uint64_t>(cfg_.irq_storm_extra);
  return cfg_.irq_storm_extra;
}

void FaultPlan::count_duplicate(int level) noexcept {
  int cls = level;
  if (cls < 0) cls = 0;
  if (cls >= kNumFaultClasses) cls = kNumFaultClasses - 1;
  ++counters_.duplicates_per_class[static_cast<std::size_t>(cls)];
}

bool FaultPlan::corrupt_bytes(std::span<std::uint8_t> frame,
                              bool payload_only) {
  std::span<std::uint8_t> target = frame;
  if (payload_only) {
    // Flip only innermost L4 payload bits: headers and classification stay
    // intact, so the corruption is caught by L4 checksum validation at
    // socket delivery and the drop lands in the frame's true class.
    const auto parsed = net::parse_frame(frame);
    if (!parsed) return false;
    std::size_t off = parsed->l4_payload_offset;
    std::size_t len = parsed->l4_payload.size();
    if (parsed->is_vxlan()) {
      if (len <= net::VxlanHeader::kSize) return false;
      const std::size_t inner_off = off + net::VxlanHeader::kSize;
      const auto inner = net::parse_frame(frame.subspan(inner_off));
      if (!inner || inner->l4_payload.empty()) return false;
      off = inner_off + inner->l4_payload_offset;
      len = inner->l4_payload.size();
    }
    if (len == 0) return false;
    target = frame.subspan(off, len);
  }
  if (target.empty()) return false;
  const auto bit = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(target.size()) * 8 - 1));
  target[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return true;
}

std::string faults_json(const FaultLayer& layer) {
  const FaultPlan& plan = layer.plan;
  const FaultCounters& c = plan.counters();
  telemetry::JsonWriter w;
  w.begin_object();
  w.member("compiled_in", PRISM_FAULTS_ENABLED != 0);
  w.member("active", plan.active());
  // A compiled-out plan never draws from its RNG, so the configured seed
  // is inert; rendering it would make behaviourally identical runs
  // snapshot differently (the determinism suite diffs this document).
  w.member("seed",
           PRISM_FAULTS_ENABLED != 0 ? plan.config().seed
                                     : std::uint64_t{0});
  w.key("injected").begin_object();
  w.member("wire_drops", c.wire_drops);
  w.member("wire_corrupts", c.wire_corrupts);
  w.member("wire_truncates", c.wire_truncates);
  w.member("wire_duplicates", c.wire_duplicates);
  w.member("wire_reorders", c.wire_reorders);
  w.member("decap_corrupts", c.decap_corrupts);
  w.member("forced_ring_full", c.forced_ring_full);
  w.member("forced_backlog_full", c.forced_backlog_full);
  w.member("skb_alloc_fails", c.skb_alloc_fails);
  w.member("buf_alloc_fails", c.buf_alloc_fails);
  w.member("irq_delays", c.irq_delays);
  w.member("irq_storm_irqs", c.irq_storm_irqs);
  w.key("duplicates_per_class").begin_array();
  for (const std::uint64_t d : c.duplicates_per_class) w.value(d);
  w.end_array();
  w.end_object();
  w.key("drops").begin_object();
  for (int r = 0; r < kNumDropReasons; ++r) {
    const auto reason = static_cast<DropReason>(r);
    w.key(drop_reason_name(reason)).begin_object();
    w.member("total", layer.drops.total(reason));
    w.key("per_class").begin_array();
    for (int cls = 0; cls < kNumFaultClasses; ++cls) {
      w.value(layer.drops.count(reason, cls));
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.member("total_drops", layer.drops.total_drops());
  w.end_object();
  return w.take();
}

}  // namespace prism::fault
