// Bounded per-flow accounting table, LRU-evicting.
//
// The socket deliverer feeds one entry per 5-tuple: packets, bytes,
// socket-layer drops, and an end-to-end latency histogram per flow — the
// per-flow view the paper's priority story implies but never shows
// (which flow's packets are waiting, and where). The table is bounded
// like a real flow cache: when full, the least-recently-seen flow is
// evicted and the eviction counted — truncation is never silent. Evicted
// nodes are reused for the incoming flow, so the steady state allocates
// nothing.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "telemetry/metrics.h"  // for PRISM_TELEMETRY_ENABLED

namespace prism::telemetry {

class JsonWriter;

class FlowTable {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;
  /// Per-flow histograms use 2^4 sub-buckets (<6.3% relative error) to
  /// keep capacity x histogram memory modest.
  static constexpr int kSubBucketBits = 4;

  /// Drop reasons remembered per flow (newest-first window).
  static constexpr std::size_t kDropHistory = 8;

  struct Entry {
    net::FiveTuple flow;
    int level = 0;  ///< priority class of the last accounted packet
    std::uint64_t packets = 0;  ///< frames delivered to a socket
    std::uint64_t bytes = 0;    ///< wire bytes of those frames
    std::uint64_t drops = 0;    ///< frames dropped at the socket layer
    sim::Time first_seen = -1;
    sim::Time last_seen = -1;
    stats::Histogram latency{kSubBucketBits};  ///< end-to-end, ns
    /// Last-N drop reasons as fault::DropReason codes (kept as ints so
    /// this header stays fault-free), ring-ordered: the i-th most recent
    /// is last_drop_reasons[(drop_history_head + N - 1 - i) % N]. Only
    /// the first min(drops, N) slots are meaningful.
    std::array<std::int8_t, kDropHistory> last_drop_reasons{};
    std::uint8_t drop_history_head = 0;

    /// Most-recent-first view of the recorded drop reasons.
    std::vector<int> recent_drop_reasons() const;
  };

  explicit FlowTable(std::size_t capacity = kDefaultCapacity);

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Runtime switch (default on); off, record/record_drop are no-ops.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Accounts one delivered frame. `e2e_ns` < 0 skips the latency
  /// histogram (skbs without a nic_rx stamp).
  void record(const net::FiveTuple& flow, std::size_t bytes, int level,
              sim::Duration e2e_ns, sim::Time at);

  /// Accounts one socket-layer drop (no bound socket / unparseable L4).
  /// `reason` is the fault::DropReason code, remembered in the flow's
  /// last-N history so "prism/flows" and the flight recorder agree on
  /// WHY a flow's packets died, not just how many (-1 = unknown).
  void record_drop(const net::FiveTuple& flow, int level, sim::Time at,
                   int reason = -1);

  /// One call per wire frame from the deliverer: delivered frames count
  /// packets/bytes (+ latency), undeliverable frames count drops.
  void record_frame(const net::FiveTuple& flow, std::size_t bytes,
                    int level, sim::Duration e2e_ns, sim::Time at,
                    bool delivered, int drop_reason = -1) {
    if (delivered) {
      record(flow, bytes, level, e2e_ns, at);
    } else {
      record_drop(flow, level, at, drop_reason);
    }
  }

  /// nullptr when the flow is not (or no longer) tracked.
  const Entry* lookup(const net::FiveTuple& flow) const;

  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Flows pushed out by the LRU bound since construction/reset.
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Tracked entries, most recently seen first.
  std::vector<const Entry*> entries() const;

  void reset();

 private:
  /// Finds or inserts (possibly evicting) the entry, moving it to the
  /// LRU front.
  Entry& touch(const net::FiveTuple& flow, sim::Time at);

  std::size_t capacity_;
  bool enabled_ = true;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;  ///< front = most recently seen
  std::unordered_map<net::FiveTuple, std::list<Entry>::iterator> index_;
};

/// Streams the table as JSON (the "prism/flows" proc file):
/// {"capacity":..., "tracked":..., "evictions":..., "flows":[...]}.
void write_flow_table_json(JsonWriter& w, const FlowTable& table);
std::string flow_table_json(const FlowTable& table);

}  // namespace prism::telemetry
