#include "telemetry/rollup.h"

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/lane_profiler.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "telemetry/json_writer.h"
#include "telemetry/span_tracer.h"

namespace prism::telemetry {

std::vector<CounterSample> merge_counters(
    const std::vector<const Registry*>& registries) {
  std::vector<CounterSample> merged;
  std::unordered_map<std::string, std::size_t> index;
  for (const Registry* r : registries) {
    if (r == nullptr) continue;
    for (const CounterSample& c : r->counters()) {
      const auto [it, fresh] = index.emplace(c.name, merged.size());
      if (fresh) {
        merged.push_back(c);
      } else {
        merged[it->second].value += c.value;
      }
    }
  }
  return merged;
}

std::vector<GaugeSample> merge_gauges(
    const std::vector<const Registry*>& registries) {
  std::vector<GaugeSample> merged;
  std::unordered_map<std::string, std::size_t> index;
  for (const Registry* r : registries) {
    if (r == nullptr) continue;
    for (const GaugeSample& g : r->gauges()) {
      const auto [it, fresh] = index.emplace(g.name, merged.size());
      if (fresh) {
        merged.push_back(g);
      } else {
        GaugeSample& m = merged[it->second];
        m.value += g.value;
        m.max_value += g.max_value;
      }
    }
  }
  return merged;
}

void write_merged_registry_json(
    JsonWriter& w, const std::vector<const Registry*>& registries) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : merge_counters(registries)) w.member(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : merge_gauges(registries)) {
    w.key(g.name)
        .begin_object()
        .member("value", g.value)
        .member("max", g.max_value)
        .end_object();
  }
  w.end_object();
  w.end_object();
}

void write_merged_latency_json(
    JsonWriter& w, const std::vector<const LatencyLedger*>& ledgers) {
  // Merge cell by cell so fleet percentiles come out of one combined
  // distribution. (stage, class) keys keep the stage-major order
  // write_latency_json uses. std::map: a handful of cells, cold path.
  std::map<std::pair<int, int>, stats::Histogram> cells;
  std::uint64_t unattributed = 0;
  std::uint64_t dropped_in_flight = 0;
  std::size_t hosts = 0;
  for (const LatencyLedger* l : ledgers) {
    if (l == nullptr) continue;
    ++hosts;
    unattributed += l->unattributed();
    dropped_in_flight += l->dropped_in_flight();
    for (int s = 0; s < kNumLatencyStages; ++s) {
      for (int c = 0; c < kNumLatencyClasses; ++c) {
        const stats::Histogram& h =
            l->histogram(static_cast<LatencyStage>(s), c);
        if (h.count() == 0) continue;
        auto [it, fresh] = cells.try_emplace(
            std::make_pair(s, c), stats::Histogram(h.sub_bucket_bits()));
        it->second.merge(h);
      }
    }
  }
  w.begin_object();
  w.member("hosts", static_cast<std::uint64_t>(hosts));
  w.member("unattributed", unattributed);
  w.member("dropped_in_flight", dropped_in_flight);
  w.key("stages").begin_array();
  for (const auto& [key, h] : cells) {
    const stats::LatencySummary s = stats::summarize(h);
    w.begin_object();
    w.member("stage",
             latency_stage_name(static_cast<LatencyStage>(key.first)));
    w.member("class", static_cast<std::int64_t>(key.second));
    w.member("count", s.count);
    w.member("min_ns", s.min_ns);
    w.member("mean_ns", s.mean_ns);
    w.member("p50_ns", s.p50_ns);
    w.member("p90_ns", s.p90_ns);
    w.member("p99_ns", s.p99_ns);
    w.member("max_ns", s.max_ns);
    w.member("sum_ns", h.sum());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_merged_anomalies_json(
    JsonWriter& w, const std::vector<const AnomalyBank*>& banks) {
  constexpr auto kKinds = static_cast<std::size_t>(AnomalyKind::kCount);
  std::array<std::uint64_t, kKinds> fired{};
  std::uint64_t findings = 0;
  std::uint64_t findings_dropped = 0;
  sim::Duration worst_wait = 0;
  const AnomalyBank* worst_bank = nullptr;
  std::size_t hosts = 0;
  for (const AnomalyBank* b : banks) {
    if (b == nullptr) continue;
    ++hosts;
    for (std::size_t k = 0; k < kKinds; ++k) {
      fired[k] += b->fired(static_cast<AnomalyKind>(k));
    }
    findings += b->findings().size();
    findings_dropped += b->findings_dropped();
    if (b->max_inversion_wait_ns() > worst_wait) {
      worst_wait = b->max_inversion_wait_ns();
      worst_bank = b;
    }
  }
  w.begin_object();
  w.member("hosts", static_cast<std::uint64_t>(hosts));
  w.key("fired").begin_object();
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < kKinds; ++k) {
    w.member(anomaly_kind_name(static_cast<AnomalyKind>(k)), fired[k]);
    total += fired[k];
  }
  w.end_object();
  w.member("fired_total", total);
  w.member("findings_retained", findings);
  w.member("findings_dropped", findings_dropped);
  w.member("max_inversion_wait_ns", static_cast<std::int64_t>(worst_wait));
  w.member("worst_inversion_flow",
           worst_bank != nullptr
               ? worst_bank->worst_inversion_flow().to_string()
               : std::string("none"));
  w.end_object();
}

void write_lanes_json(JsonWriter& w, const sim::LaneProfiler* profiler) {
  w.begin_object();
  const bool compiled_in = PRISM_TELEMETRY_ENABLED != 0;
  w.member("compiled_in", compiled_in);
  if (profiler == nullptr || profiler->num_lanes() == 0) {
    w.member("attached", profiler != nullptr);
    w.member("rounds", std::uint64_t{0});
    w.end_object();
    return;
  }
  const sim::LaneProfiler& p = *profiler;
  w.member("attached", true);
  w.member("rounds", p.rounds_recorded());
  w.member("sample_every", p.sample_every());
  w.member("messages_posted", p.messages_posted());
  w.member("busy_imbalance", p.busy_imbalance());
  w.member("event_imbalance", p.event_imbalance());
  w.key("lanes").begin_array();
  for (int i = 0; i < p.num_lanes(); ++i) {
    const auto& l = p.lane(i);
    w.begin_object();
    w.member("lane", static_cast<std::int64_t>(i));
    w.member("events", l.events);
    w.member("sampled_rounds", l.sampled_rounds);
    w.member("busy_ns", l.busy_ns);
    w.member("sim_ns", static_cast<std::int64_t>(l.sim_ns));
    w.member("inbox_msgs", l.inbox_msgs);
    w.member("inbox_high_water",
             static_cast<std::uint64_t>(l.inbox_high_water));
    w.member("inbox_spills", l.inbox_spills);
    w.member("critical_rounds", l.critical_rounds);
    w.end_object();
  }
  w.end_array();
  w.key("workers").begin_array();
  for (int i = 0; i < p.num_workers(); ++i) {
    const auto& t = p.worker(i);
    w.begin_object();
    w.member("worker", static_cast<std::int64_t>(i));
    w.member("rounds", t.rounds);
    w.member("wall_ns", t.wall_ns);
    w.member("barrier_wait_ns", t.barrier_wait_ns);
    w.member("busy_ns", t.busy_ns);
    w.member("idle_ns", t.idle_ns());
    w.end_object();
  }
  w.end_array();
  w.key("round_records")
      .begin_object()
      .member("lane_retained",
              static_cast<std::uint64_t>(p.lane_round_count()))
      .member("lane_dropped", p.lane_rounds_dropped())
      .member("worker_retained",
              static_cast<std::uint64_t>(p.worker_round_count()))
      .member("worker_dropped", p.worker_rounds_dropped())
      .end_object();
  w.end_object();
}

std::string lanes_json(const sim::LaneProfiler* profiler) {
  JsonWriter w;
  write_lanes_json(w, profiler);
  return w.take();
}

void export_lane_trace(const sim::LaneProfiler& profiler, SpanTracer& tracer,
                       int track_base) {
  const auto window_id = tracer.intern("window");
  const auto stall_id = tracer.intern("barrier_stall");
  for (int i = 0; i < profiler.num_lanes(); ++i) {
    const std::string lane = "lane" + std::to_string(i);
    tracer.set_track_label(track_base + 2 * i, lane + ".window");
    tracer.set_track_label(track_base + 2 * i + 1, lane + ".stall");
  }
  // Worker barrier waits by (round, worker), so each lane's stall track
  // shows the wait of the worker that ran it that round. Export-time
  // allocation is fine: this is a cold path over retained records.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> stalls;
  for (std::size_t i = 0; i < profiler.worker_round_count(); ++i) {
    const auto& r = profiler.worker_round(i);
    stalls[{r.round, r.worker}] = r.barrier_wait_ns;
  }
  for (std::size_t i = 0; i < profiler.lane_round_count(); ++i) {
    const auto& r = profiler.lane_round(i);
    const int lane = static_cast<int>(r.lane);
    const sim::Duration len =
        r.window_end > r.window_start ? r.window_end - r.window_start : 0;
    tracer.span(track_base + 2 * lane, window_id, r.window_start, len,
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    r.events, UINT32_MAX)),
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    r.busy_ns, UINT32_MAX)));
    const auto it = stalls.find({r.round, r.worker});
    if (it != stalls.end() && it->second > 0) {
      // Wall-clock stall duration drawn on the sim-time axis, anchored
      // at the window edge the worker was waiting to cross.
      tracer.span(track_base + 2 * lane + 1, stall_id, r.window_end,
                  static_cast<sim::Duration>(it->second));
    }
  }
}

}  // namespace prism::telemetry
