// Latency attribution: where the microseconds go, per stage and per
// priority class.
//
// The paper's argument (§IV, Figs. 8-11) is that high-priority packets
// wait less *somewhere* in the NIC -> softirq -> bridge -> backlog ->
// socket pipeline. The skb already carries life-cycle timestamps
// (kernel/skb.h); this ledger turns them into per-(stage, class)
// stats::Histograms at the single point where a packet's journey is
// complete — socket delivery — so end-to-end percentiles decompose into
// ring wait, per-stage queue wait, and per-stage service time that sum
// back (exactly, in a discrete-event simulator) to the end-to-end number.
//
// The ledger also keeps a windowed time-series: a ring of per-interval
// end-to-end histograms (interval configurable), merged on demand, so
// load sweeps report p50/p99-vs-time instead of a single end-of-run
// number. Like the metrics registry, recording compiles out under
// -DPRISM_TELEMETRY=OFF; at runtime set_enabled(false) detaches the
// ledger for A/B overhead measurements (bench/perf_smoke).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/skb.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "telemetry/metrics.h"  // for PRISM_TELEMETRY_ENABLED

namespace prism::telemetry {

class JsonWriter;

/// Pipeline segments the ledger attributes time to. The stages before
/// kEndToEnd are the consecutive segments of [nic_rx, socket_enqueue] —
/// they telescope, so their per-packet durations sum exactly to kEndToEnd
/// (a packet traverses either stages 2-3 or the flow-cache fast path,
/// never both). kIrqToPoll (per poll, not per packet) and kSocketWait
/// (socket buffer -> recv syscall, after socket_enqueue) are recorded
/// separately and excluded from the sum.
enum class LatencyStage : int {
  kRingWait = 0,    ///< DMA arrival -> driver poll picks the frame up
  kStage1Service,   ///< NIC driver processing (alloc, classify, GRO)
  kStage2Wait,      ///< stage-1 done -> bridge gro_cell poll starts
  kStage2Service,   ///< bridge processing (FDB lookup, forward)
  kStage3Wait,      ///< stage-2 done -> backlog poll starts (incl. RPS IPI)
  kStage3Service,   ///< backlog/veth processing + protocol delivery
  kFlowCache,       ///< flow-cache fast path: cached transform + delivery
  kEndToEnd,        ///< nic_rx -> socket_enqueue
  kIrqToPoll,       ///< IRQ fire -> first driver poll (per poll)
  kSocketWait,      ///< socket_enqueue -> application recv
  kCount
};

constexpr int kNumLatencyStages = static_cast<int>(LatencyStage::kCount);
/// Mirrors kernel::kNumPriorityLevels (static_assert at the wiring site).
constexpr int kNumLatencyClasses = 4;

/// Stable lowercase identifier ("ring_wait", "stage2_service", ...), used
/// in JSON exports and table rendering.
const char* latency_stage_name(LatencyStage stage);

/// One non-empty (stage, class) cell of a ledger snapshot.
struct StageRow {
  LatencyStage stage = LatencyStage::kEndToEnd;
  int level = 0;  ///< priority class (0 = best-effort)
  std::uint64_t count = 0;
  std::int64_t min_ns = 0;
  double mean_ns = 0.0;
  std::int64_t p50_ns = 0;
  std::int64_t p90_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t max_ns = 0;
  double sum_ns = 0.0;  ///< exact; the reconciliation tests sum these
};

/// One non-empty (window, class) cell of the time-series ring.
struct WindowRow {
  std::int64_t window = 0;    ///< absolute index (start_ns / interval)
  sim::Time start_ns = 0;     ///< window start instant
  int level = 0;
  std::uint64_t count = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
};

/// Materialized read-only view of a ledger, safe to keep after the host
/// is gone. Scenario results carry one; benches render it.
struct LatencyBreakdown {
  bool enabled = true;
  std::vector<StageRow> stages;    ///< non-empty cells, stage-major order
  std::vector<WindowRow> windows;  ///< retained windows, oldest first
  sim::Duration window_interval_ns = 0;
  std::uint64_t windows_evicted = 0;  ///< windows rotated out of the ring
  std::uint64_t window_late_drops = 0;
  std::uint64_t unattributed = 0;  ///< deliveries without full timestamps
  /// Packets dropped mid-pipeline: their partial stamps are discarded
  /// (never recorded as stage durations) and the loss is counted here.
  std::uint64_t dropped_in_flight = 0;
};

/// Per-host ledger of stage-resident durations.
class LatencyLedger {
 public:
  static constexpr sim::Duration kDefaultWindowInterval =
      sim::milliseconds(10);
  static constexpr std::size_t kDefaultWindowCapacity = 64;
  /// Window histograms trade resolution (2^4 sub-buckets, <6.3% relative
  /// error) for memory: the ring holds capacity x classes of them.
  static constexpr int kWindowSubBucketBits = 4;

  explicit LatencyLedger(
      sim::Duration window_interval = kDefaultWindowInterval,
      std::size_t window_capacity = kDefaultWindowCapacity);

  LatencyLedger(const LatencyLedger&) = delete;
  LatencyLedger& operator=(const LatencyLedger&) = delete;

  /// Runtime switch (default on). Off, every record_* is a no-op — the
  /// baseline arm of perf_smoke's overhead A/B.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Reconfigures the time-series interval (resets retained windows).
  void set_window_interval(sim::Duration interval);
  sim::Duration window_interval() const noexcept { return interval_; }
  std::size_t window_capacity() const noexcept { return ring_.size(); }

  /// Records one delivered packet from its skb timestamps: each traversed
  /// consecutive segment, the end-to-end duration, and the time-series
  /// window at the delivery instant. Deliveries without nic_rx /
  /// socket_enqueue stamps (synthetically injected skbs) are counted in
  /// unattributed() instead.
  void record_delivery(const kernel::SkbTimestamps& ts, int level);

  /// Records one IRQ -> first-poll duration (class 0: the hardware ring
  /// is priority-blind, paper §IV-D).
  void record_irq_to_poll(sim::Duration d);

  /// Records one socket-buffer residence time (enqueue -> recv).
  void record_socket_wait(sim::Duration d, int level);

  /// Records a packet dropped mid-pipeline (ring/backlog/rcvbuf overflow,
  /// validation failure, alloc failure). The skb's partial timestamps die
  /// with it — counting the loss here keeps "every packet is either fully
  /// attributed or counted dropped" true instead of leaking stamps into
  /// stage histograms that would never reconcile.
  void record_dropped(int level);

  /// Aggregate histogram of one (stage, class) cell.
  const stats::Histogram& histogram(LatencyStage stage, int level) const;

  /// Merges the retained time-series windows for `level` into one
  /// histogram (the "merged on demand" read path; same resolution as the
  /// window histograms). level < 0 merges every class.
  stats::Histogram merged_windows(int level = -1) const;

  std::uint64_t unattributed() const noexcept { return unattributed_; }
  std::uint64_t windows_evicted() const noexcept { return evicted_; }
  std::uint64_t window_late_drops() const noexcept { return late_; }
  /// Total mid-pipeline drops; per-class via the `level` overload.
  std::uint64_t dropped_in_flight() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : dropped_) sum += v;
    return sum;
  }
  std::uint64_t dropped_in_flight(int level) const noexcept {
    return dropped_[static_cast<std::size_t>(clamp_level(level))];
  }

  /// Materializes every non-empty cell (and the retained windows).
  LatencyBreakdown snapshot() const;

  /// Drops all recorded data (configuration is kept).
  void reset();

 private:
  struct Window {
    std::int64_t index = -1;  ///< absolute window index, -1 = unused
    std::uint64_t count = 0;
    /// Lazily allocated: most windows see one or two active classes.
    std::array<std::unique_ptr<stats::Histogram>, kNumLatencyClasses>
        per_level;
  };

  static int clamp_level(int level) noexcept {
    if (level < 0) return 0;
    if (level >= kNumLatencyClasses) return kNumLatencyClasses - 1;
    return level;
  }

  stats::Histogram& cell(LatencyStage stage, int level) noexcept {
    return hists_[static_cast<std::size_t>(stage) *
                      static_cast<std::size_t>(kNumLatencyClasses) +
                  static_cast<std::size_t>(level)];
  }

  void window_record(sim::Time at, int level, sim::Duration e2e);

  bool enabled_ = true;
  sim::Duration interval_;
  std::vector<stats::Histogram> hists_;  ///< stage-major, kCount x classes
  std::vector<Window> ring_;
  std::uint64_t unattributed_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t late_ = 0;
  std::array<std::uint64_t, kNumLatencyClasses> dropped_{};
};

/// Streams the ledger as JSON (the "prism/latency" proc file):
/// {"enabled":..., "unattributed":..., "stages":[...], "windows":{...}}.
void write_latency_json(JsonWriter& w, const LatencyLedger& ledger);
std::string latency_json(const LatencyLedger& ledger);

/// Plain-text table of the per-stage breakdown (one row per non-empty
/// (stage, class) cell), shared by benches and examples.
std::string render_latency_breakdown(const LatencyBreakdown& b);

/// Plain-text p50/p99-vs-time table from the retained windows.
std::string render_latency_windows(const LatencyBreakdown& b);

}  // namespace prism::telemetry
