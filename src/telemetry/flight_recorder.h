// Flow-path flight recorder: sampled per-packet lifecycle tracing.
//
// The latency ledger answers "how long do packets of class C wait in
// stage S" in aggregate; the flight recorder answers "which packet of
// which flow got stuck where, behind what". For flows selected by a
// deterministic hash sampler (plus always-trace pins for high-priority
// classes) it records every causal step of a packet's journey — ring
// arrival, each stage enqueue/dequeue with the queue depth and the
// priority class at the head of the queue at that instant, drops with
// reason, socket delivery — into a bounded overwrite-oldest ring.
//
// Like the LaneProfiler, recording NEVER alters the simulation: no
// simulated cost is charged and no scheduling decision depends on the
// recorder, so armed and disarmed runs are schedule-identical. The only
// cost is wall-clock, measured by perf_smoke's flight_recorder_overhead
// A/B point (budget: <= 3% at the default 1-in-64 sampling rate).
//
// Sampler determinism: the flow hash is std::hash<net::FiveTuple> — a
// fixed splitmix-style mix, independent of platform, thread count and
// run order — so the same flows are traced in every run of a seed, at
// any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/flow.h"
#include "sim/time.h"
#include "telemetry/metrics.h"

namespace prism::telemetry {

class AnomalyBank;

/// What happened to the packet at this step of its journey.
enum class FlightEventKind : std::uint8_t {
  kRingArrival,  ///< dequeued from the NIC ring (wait = ring residency)
  kEnqueue,      ///< pushed onto a stage queue (depth/head at that instant)
  kDequeue,      ///< popped off a stage queue (wait = queue residency)
  kDrop,         ///< dropped (drop_reason = fault::DropReason code)
  kDeliver,      ///< handed to the socket (wait = end-to-end latency)
  kFastPath,     ///< overlay flow-cache hit: stages 2-3 skipped
};

const char* flight_event_kind_name(FlightEventKind kind) noexcept;

/// One step of a traced packet's lifecycle. Stage is 1..3 for the RX
/// pipeline stages and 4 for socket delivery; head_level is the priority
/// class at the head of the queue when this packet was enqueued (-1 =
/// queue empty, or a FIFO surface such as the NIC ring with no classes).
struct FlightEvent {
  sim::Time at = 0;
  net::FiveTuple flow;
  sim::Duration wait_ns = 0;
  std::int32_t depth = 0;
  FlightEventKind kind = FlightEventKind::kRingArrival;
  std::uint8_t stage = 0;
  std::int8_t level = 0;
  std::int8_t head_level = -1;
  std::int8_t drop_reason = -1;  ///< fault::DropReason code; -1 = none
};

/// Sampling + sizing knobs. Defaults are the always-on configuration the
/// perf budget is measured at.
struct FlightRecorderConfig {
  /// Trace 1 in N flows by hash (rounded up to a power of two; 1 = all).
  std::uint32_t sample_period = 64;
  /// Classes >= pin_level are always traced regardless of the sampler.
  int pin_level = 1;
  /// Events retained per host; oldest overwritten first.
  std::size_t ring_capacity = 2048;
};

/// Bounded per-host lifecycle ring. All record paths compile out under
/// -DPRISM_TELEMETRY=OFF; should_trace() then returns false so hot paths
/// skip their trace blocks entirely.
class FlightRecorder {
 public:
  FlightRecorder() { configure(FlightRecorderConfig{}); }

  void configure(const FlightRecorderConfig& config);
  const FlightRecorderConfig& config() const noexcept { return config_; }

  void set_armed(bool armed) noexcept { armed_ = armed; }
  bool armed() const noexcept {
#if PRISM_TELEMETRY_ENABLED
    return armed_;
#else
    return false;
#endif
  }

  /// Detector bank fed on dequeue/ring observations (optional).
  void set_anomalies(AnomalyBank* bank) noexcept { anomalies_ = bank; }

  /// Deterministic sampling decision: pinned class, or flow-hash slot 0.
  bool should_trace(const net::FiveTuple& flow, int level) const noexcept {
#if PRISM_TELEMETRY_ENABLED
    if (!armed_) return false;
    if (level >= config_.pin_level) return true;
    return (std::hash<net::FiveTuple>{}(flow)&sample_mask_) == 0;
#else
    (void)flow;
    (void)level;
    return false;
#endif
  }

  // ------------------------------------------------------------ stamp points
  /// NIC ring dequeue: `arrived` is ring-insertion time, `dequeued` the
  /// poll instant; the difference is the (priority-blind) ring wait.
  void on_ring_arrival(const net::FiveTuple& flow, int level,
                       sim::Time arrived, sim::Time dequeued);
  /// Stage-queue push. `depth` counts all levels after the push and
  /// `head_level` is the class about to be served (-1 = was empty).
  void on_enqueue(const net::FiveTuple& flow, int stage, int level, int depth,
                  int head_level, sim::Time at);
  /// Stage-queue pop. `head_level_at_enqueue` replays what this packet
  /// queued behind; the anomaly bank turns (wait, head) into inversions.
  void on_dequeue(const net::FiveTuple& flow, int stage, int level,
                  sim::Duration wait_ns, int head_level_at_enqueue,
                  sim::Time at);
  void on_drop(const net::FiveTuple& flow, int stage, int level,
               int drop_reason, sim::Time at);
  void on_deliver(const net::FiveTuple& flow, int level,
                  sim::Duration e2e_ns, sim::Time at);
  /// Overlay flow-cache hit: the packet left stage 1 straight for socket
  /// delivery via the cached transform (no stage-2/3 events will follow).
  void on_fast_path(const net::FiveTuple& flow, int level, sim::Time at);

  // ------------------------------------------------------------- inspection
  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return config_.ring_capacity; }
  /// i-th retained event, oldest first.
  const FlightEvent& at(std::size_t i) const noexcept;
  std::uint64_t recorded() const noexcept { return recorded_; }
  std::uint64_t overwritten() const noexcept { return overwritten_; }

  /// Newest `n` events, oldest-first — the slice a firing detector
  /// freezes into its finding.
  std::vector<FlightEvent> tail(std::size_t n) const;

  void reset();

 private:
  void push(const FlightEvent& event);

  FlightRecorderConfig config_;
  std::uint64_t sample_mask_ = 63;
  bool armed_ = true;
  AnomalyBank* anomalies_ = nullptr;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;  ///< next overwrite slot once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
};

}  // namespace prism::telemetry
