#include "telemetry/anomaly.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fault/fault.h"
#include "telemetry/json_writer.h"
#include "telemetry/span_tracer.h"

namespace prism::telemetry {

namespace {

constexpr std::uint64_t kSub = 1ull << WindowHist::kSubBits;

int hist_index(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - WindowHist::kSubBits;
  const int idx =
      ((msb - WindowHist::kSubBits + 1) << WindowHist::kSubBits) +
      static_cast<int>((v >> shift) - kSub);
  constexpr int kMax = 60 * (1 << WindowHist::kSubBits) - 1;
  return idx < kMax ? idx : kMax;
}

std::uint64_t hist_upper_bound(int idx) noexcept {
  if (idx < static_cast<int>(kSub)) return static_cast<std::uint64_t>(idx);
  const int block = idx >> WindowHist::kSubBits;
  const int within = idx & static_cast<int>(kSub - 1);
  const int shift = block - 1;
  const std::uint64_t low = (kSub + static_cast<std::uint64_t>(within))
                            << shift;
  return low + ((1ull << shift) - 1);
}

const char* drop_code_name(int code) {
  if (code < 0 || code >= static_cast<int>(fault::DropReason::kCount)) {
    return "none";
  }
  return fault::drop_reason_name(static_cast<fault::DropReason>(code));
}

}  // namespace

const char* anomaly_kind_name(AnomalyKind kind) noexcept {
  switch (kind) {
    case AnomalyKind::kQueueInversion:
      return "queue_inversion";
    case AnomalyKind::kRingInversion:
      return "ring_inversion";
    case AnomalyKind::kSloBreach:
      return "slo_breach";
    case AnomalyKind::kDropBurst:
      return "drop_burst";
    case AnomalyKind::kGovernorFlap:
      return "governor_flap";
    case AnomalyKind::kConvergenceTimeout:
      return "convergence_timeout";
    case AnomalyKind::kCount:
      break;
  }
  return "?";
}

void WindowHist::record(std::uint64_t v) noexcept {
  ++counts_[static_cast<std::size_t>(hist_index(v))];
  ++total_;
}

std::uint64_t WindowHist::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  const std::uint64_t want = target < 1 ? 1 : target;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= want) return hist_upper_bound(static_cast<int>(i));
  }
  return hist_upper_bound(static_cast<int>(counts_.size()) - 1);
}

void WindowHist::clear() noexcept {
  counts_.fill(0);
  total_ = 0;
}

void AnomalyBank::arm(const AnomalyConfig& config) {
  config_ = config;
  if (config_.slo_window_ns <= 0) config_.slo_window_ns = 1;
  if (config_.drop_burst_window_ns <= 0) config_.drop_burst_window_ns = 1;
  if (config_.flap_window_ns <= 0) config_.flap_window_ns = 1;
  armed_ = true;
}

std::uint64_t AnomalyBank::fired_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t f : fired_) total += f;
  return total;
}

void AnomalyBank::reset() {
  fired_.fill(0);
  findings_.clear();
  findings_dropped_ = 0;
  max_inversion_wait_ = 0;
  worst_inversion_flow_ = net::FiveTuple{};
  for (auto& w : slo_) {
    w.hist.clear();
    w.start = -1;
  }
  drops_ = BurstWindow{};
  flaps_ = BurstWindow{};
  convergence_.fill(ConvergenceWatch{});
  recoveries_.clear();
}

bool AnomalyBank::convergence_watch_armed(int level) const noexcept {
  if (level < 0 || level >= static_cast<int>(convergence_.size())) {
    return false;
  }
  return convergence_[static_cast<std::size_t>(level)].armed;
}

void AnomalyBank::note_disruption(int level, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  if (!armed_ || config_.convergence_deadline_ns <= 0 ||
      config_.slo_p99_ns <= 0) {
    return;
  }
  const int c = std::clamp(level, 0, static_cast<int>(slo_.size()) - 1);
  ConvergenceWatch& cw = convergence_[static_cast<std::size_t>(c)];
  cw.armed = true;
  cw.disrupted_at = at;
  // Restart the class's SLO window at the disruption instant: samples
  // taken before the disruption must not count toward (or against) the
  // post-disruption recovery judgement.
  SloWindow& w = slo_[static_cast<std::size_t>(c)];
  w.hist.clear();
  w.start = at;
#else
  (void)level;
  (void)at;
#endif
}

void AnomalyBank::fire(AnomalyFinding finding) {
  ++fired_[static_cast<std::size_t>(finding.kind)];
  if (findings_.size() >= config_.max_findings) {
    ++findings_dropped_;
    return;
  }
  if (recorder_ != nullptr && config_.freeze_events > 0) {
    finding.frozen = recorder_->tail(config_.freeze_events);
  }
  findings_.push_back(std::move(finding));
}

void AnomalyBank::on_stage_wait(const net::FiveTuple& flow, int stage,
                                int level, sim::Duration wait_ns,
                                int head_level, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  if (!armed_ || !config_.detect_inversion) return;
  if (level < 1 || wait_ns < config_.inversion_wait_ns) return;
  AnomalyKind kind;
  if (stage == 1 && head_level < 0) {
    kind = AnomalyKind::kRingInversion;  // priority-blind FIFO residency
  } else if (head_level >= 0 && head_level < level) {
    kind = AnomalyKind::kQueueInversion;  // queued behind a lower class
  } else {
    return;
  }
  if (wait_ns > max_inversion_wait_) {
    max_inversion_wait_ = wait_ns;
    worst_inversion_flow_ = flow;
  }
  AnomalyFinding f;
  f.kind = kind;
  f.at = at;
  f.stage = stage;
  f.level = level;
  f.head_level = head_level;
  f.flow = flow;
  f.wait_ns = wait_ns;
  f.value = static_cast<double>(wait_ns);
  f.threshold = static_cast<double>(config_.inversion_wait_ns);
  fire(std::move(f));
#else
  (void)flow;
  (void)stage;
  (void)level;
  (void)wait_ns;
  (void)head_level;
  (void)at;
#endif
}

void AnomalyBank::on_delivery(int level, sim::Duration e2e_ns, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  if (!armed_ || config_.slo_p99_ns <= 0 || e2e_ns < 0) return;
  const int c = std::clamp(level, 0, static_cast<int>(slo_.size()) - 1);
  SloWindow& w = slo_[static_cast<std::size_t>(c)];
  if (w.start < 0) w.start = at;
  ConvergenceWatch& cw = convergence_[static_cast<std::size_t>(c)];
  if (at >= w.start + config_.slo_window_ns) {
    // Finalize the window that just closed; empty skipped windows can
    // never breach, so jump straight to the window containing `at`.
    if (w.hist.total() > 0) {
      const std::uint64_t p99 = w.hist.quantile(0.99);
      if (c >= 1 && p99 > static_cast<std::uint64_t>(config_.slo_p99_ns)) {
        AnomalyFinding f;
        f.kind = AnomalyKind::kSloBreach;
        f.at = w.start + config_.slo_window_ns;
        f.level = c;
        f.value = static_cast<double>(p99);
        f.threshold = static_cast<double>(config_.slo_p99_ns);
        fire(std::move(f));
      }
      // A fully post-disruption window back under the target closes the
      // class's convergence watch with a recovery record.
      if (cw.armed && w.start >= cw.disrupted_at &&
          p99 <= static_cast<std::uint64_t>(config_.slo_p99_ns)) {
        cw.armed = false;
        recoveries_.push_back(ConvergenceRecovery{
            c, cw.disrupted_at, w.start + config_.slo_window_ns});
      }
    }
    w.hist.clear();
    w.start += config_.slo_window_ns *
               ((at - w.start) / config_.slo_window_ns);
  }
  w.hist.record(static_cast<std::uint64_t>(e2e_ns));
  // Still watching past the deadline: the class never produced a
  // compliant window in time. Fires once, then the watch disarms.
  if (cw.armed && config_.convergence_deadline_ns > 0 &&
      at > cw.disrupted_at + config_.convergence_deadline_ns) {
    cw.armed = false;
    AnomalyFinding f;
    f.kind = AnomalyKind::kConvergenceTimeout;
    f.at = at;
    f.level = c;
    f.value = static_cast<double>(at - cw.disrupted_at);
    f.threshold = static_cast<double>(config_.convergence_deadline_ns);
    fire(std::move(f));
  }
#else
  (void)level;
  (void)e2e_ns;
  (void)at;
#endif
}

void AnomalyBank::on_drop(int reason, int level, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  if (!armed_ || config_.drop_burst_threshold == 0) return;
  if (drops_.start < 0 || at >= drops_.start + config_.drop_burst_window_ns) {
    drops_.start = at;
    drops_.count = 0;
    drops_.fired_this_window = false;
  }
  ++drops_.count;
  if (!drops_.fired_this_window &&
      drops_.count >= config_.drop_burst_threshold) {
    drops_.fired_this_window = true;
    AnomalyFinding f;
    f.kind = AnomalyKind::kDropBurst;
    f.at = at;
    f.level = level;
    f.head_level = reason;  // reuse: the drop reason code that tipped it
    f.value = static_cast<double>(drops_.count);
    f.threshold = static_cast<double>(config_.drop_burst_threshold);
    fire(std::move(f));
  }
#else
  (void)reason;
  (void)level;
  (void)at;
#endif
}

void AnomalyBank::on_governor_transition(sim::Time at, int from_state,
                                         int to_state, const char* cause) {
#if PRISM_TELEMETRY_ENABLED
  (void)cause;
  if (!armed_ || config_.flap_threshold == 0) return;
  if (flaps_.start < 0 || at >= flaps_.start + config_.flap_window_ns) {
    flaps_.start = at;
    flaps_.count = 0;
    flaps_.fired_this_window = false;
  }
  ++flaps_.count;
  if (!flaps_.fired_this_window && flaps_.count >= config_.flap_threshold) {
    flaps_.fired_this_window = true;
    AnomalyFinding f;
    f.kind = AnomalyKind::kGovernorFlap;
    f.at = at;
    f.level = to_state;       // reuse: the state flapped into
    f.head_level = from_state;
    f.value = static_cast<double>(flaps_.count);
    f.threshold = static_cast<double>(config_.flap_threshold);
    fire(std::move(f));
  }
#else
  (void)at;
  (void)from_state;
  (void)to_state;
  (void)cause;
#endif
}

namespace {

void write_flight_event(JsonWriter& w, const FlightEvent& e) {
  w.begin_object();
  w.member("at_ns", static_cast<std::int64_t>(e.at));
  w.member("kind", flight_event_kind_name(e.kind));
  w.member("stage", static_cast<int>(e.stage));
  w.member("class", static_cast<int>(e.level));
  w.member("head_class", static_cast<int>(e.head_level));
  w.member("depth", static_cast<int>(e.depth));
  w.member("wait_ns", static_cast<std::int64_t>(e.wait_ns));
  if (e.drop_reason >= 0) {
    w.member("drop_reason", drop_code_name(e.drop_reason));
  }
  w.member("flow", e.flow.to_string());
  w.end_object();
}

}  // namespace

void anomalies_json(JsonWriter& w, const AnomalyBank& bank,
                    const FlightRecorder* recorder) {
  w.begin_object();
  w.member("compiled_in", PRISM_TELEMETRY_ENABLED ? true : false);
  w.member("armed", bank.armed());
  const AnomalyConfig& cfg = bank.config();
  w.key("config").begin_object();
  w.member("detect_inversion", cfg.detect_inversion);
  w.member("inversion_wait_ns", static_cast<std::int64_t>(cfg.inversion_wait_ns));
  w.member("slo_p99_ns", static_cast<std::int64_t>(cfg.slo_p99_ns));
  w.member("slo_window_ns", static_cast<std::int64_t>(cfg.slo_window_ns));
  w.member("drop_burst_threshold",
           static_cast<std::uint64_t>(cfg.drop_burst_threshold));
  w.member("drop_burst_window_ns",
           static_cast<std::int64_t>(cfg.drop_burst_window_ns));
  w.member("flap_threshold", static_cast<std::uint64_t>(cfg.flap_threshold));
  w.member("flap_window_ns", static_cast<std::int64_t>(cfg.flap_window_ns));
  w.member("convergence_deadline_ns",
           static_cast<std::int64_t>(cfg.convergence_deadline_ns));
  w.member("max_findings", static_cast<std::uint64_t>(cfg.max_findings));
  w.member("freeze_events", static_cast<std::uint64_t>(cfg.freeze_events));
  w.end_object();
  if (recorder != nullptr) {
    w.key("recorder").begin_object();
    w.member("armed", recorder->armed());
    w.member("sample_period",
             static_cast<std::uint64_t>(recorder->config().sample_period));
    w.member("pin_level", recorder->config().pin_level);
    w.member("ring_capacity",
             static_cast<std::uint64_t>(recorder->capacity()));
    w.member("events_retained", static_cast<std::uint64_t>(recorder->size()));
    w.member("events_recorded", recorder->recorded());
    w.member("events_overwritten", recorder->overwritten());
    w.end_object();
  }
  w.key("fired").begin_object();
  for (std::size_t k = 0; k < static_cast<std::size_t>(AnomalyKind::kCount);
       ++k) {
    w.member(anomaly_kind_name(static_cast<AnomalyKind>(k)),
             bank.fired(static_cast<AnomalyKind>(k)));
  }
  w.end_object();
  w.member("fired_total", bank.fired_total());
  w.member("findings_dropped", bank.findings_dropped());
  w.member("max_inversion_wait_ns",
           static_cast<std::int64_t>(bank.max_inversion_wait_ns()));
  w.member("worst_inversion_flow",
           bank.max_inversion_wait_ns() > 0
               ? bank.worst_inversion_flow().to_string()
               : std::string("none"));
  w.key("recoveries").begin_array();
  for (const AnomalyBank::ConvergenceRecovery& r : bank.recoveries()) {
    w.begin_object();
    w.member("class", r.level);
    w.member("disrupted_at_ns", static_cast<std::int64_t>(r.disrupted_at));
    w.member("recovered_at_ns", static_cast<std::int64_t>(r.recovered_at));
    w.member("recovery_ns",
             static_cast<std::int64_t>(r.recovered_at - r.disrupted_at));
    w.end_object();
  }
  w.end_array();
  w.key("findings").begin_array();
  for (const AnomalyFinding& f : bank.findings()) {
    w.begin_object();
    w.member("kind", anomaly_kind_name(f.kind));
    w.member("at_ns", static_cast<std::int64_t>(f.at));
    w.member("stage", f.stage);
    w.member("class", f.level);
    w.member("head_class", f.head_level);
    w.member("flow", f.kind == AnomalyKind::kQueueInversion ||
                             f.kind == AnomalyKind::kRingInversion
                         ? f.flow.to_string()
                         : std::string("n/a"));
    w.member("wait_ns", static_cast<std::int64_t>(f.wait_ns));
    w.member("value", f.value);
    w.member("threshold", f.threshold);
    w.key("frozen").begin_array();
    for (const FlightEvent& e : f.frozen) write_flight_event(w, e);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string anomalies_json(const AnomalyBank& bank,
                           const FlightRecorder* recorder) {
  JsonWriter w;
  anomalies_json(w, bank, recorder);
  return w.take();
}

bool export_anomaly_trace_file(const AnomalyBank& bank,
                               const std::string& path) {
  SpanTracer tracer;
  tracer.set_track_label(0, "findings");
  tracer.set_track_label(1, "stage1.ring+poll");
  tracer.set_track_label(2, "stage2.grocell");
  tracer.set_track_label(3, "stage3.backlog");
  tracer.set_track_label(4, "socket");
  std::array<SpanTracer::NameId, static_cast<std::size_t>(AnomalyKind::kCount)>
      kind_ids{};
  for (std::size_t k = 0; k < kind_ids.size(); ++k) {
    kind_ids[k] = tracer.intern(anomaly_kind_name(static_cast<AnomalyKind>(k)));
  }
  std::array<SpanTracer::NameId, 6> event_ids{};
  for (std::uint8_t k = 0; k < event_ids.size(); ++k) {
    event_ids[k] =
        tracer.intern(flight_event_kind_name(static_cast<FlightEventKind>(k)));
  }
  for (const AnomalyFinding& f : bank.findings()) {
    tracer.instant(0, kind_ids[static_cast<std::size_t>(f.kind)], f.at);
    for (const FlightEvent& e : f.frozen) {
      const int track = e.stage >= 1 && e.stage <= 4 ? e.stage : 0;
      const auto name = event_ids[static_cast<std::size_t>(e.kind)];
      if ((e.kind == FlightEventKind::kDequeue ||
           e.kind == FlightEventKind::kDeliver ||
           e.kind == FlightEventKind::kRingArrival) &&
          e.wait_ns > 0) {
        tracer.span(track, name, e.at - e.wait_ns, e.wait_ns,
                    static_cast<std::uint32_t>(e.level),
                    static_cast<std::uint32_t>(
                        e.head_level < 0 ? 0 : e.head_level));
      } else {
        tracer.instant(track, name, e.at);
      }
    }
  }
  return tracer.export_chrome_trace_file(path, "prism-anomalies");
}

}  // namespace prism::telemetry
