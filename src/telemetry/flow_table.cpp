#include "telemetry/flow_table.h"

#include <iterator>
#include <stdexcept>

#include "fault/fault.h"
#include "telemetry/json_writer.h"

namespace prism::telemetry {

std::vector<int> FlowTable::Entry::recent_drop_reasons() const {
  const std::size_t n =
      drops < kDropHistory ? static_cast<std::size_t>(drops) : kDropHistory;
  std::vector<int> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(last_drop_reasons[(drop_history_head + kDropHistory - 1 -
                                     i) %
                                    kDropHistory]);
  }
  return out;
}

FlowTable::FlowTable(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("FlowTable: capacity must be positive");
  }
  index_.reserve(capacity);
}

FlowTable::Entry& FlowTable::touch(const net::FiveTuple& flow,
                                   sim::Time at) {
  const auto it = index_.find(flow);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->last_seen = at;
    return *it->second;
  }
  if (index_.size() >= capacity_) {
    // Evict the least-recently-seen flow, reusing its node (and its
    // histogram's bucket storage) for the newcomer.
    auto victim = std::prev(lru_.end());
    index_.erase(victim->flow);
    ++evictions_;
    lru_.splice(lru_.begin(), lru_, victim);
    Entry& e = lru_.front();
    e.flow = flow;
    e.level = 0;
    e.packets = 0;
    e.bytes = 0;
    e.drops = 0;
    e.first_seen = at;
    e.last_seen = at;
    e.latency.reset();
    e.last_drop_reasons.fill(0);
    e.drop_history_head = 0;
    index_.emplace(flow, lru_.begin());
    return e;
  }
  lru_.emplace_front();
  Entry& e = lru_.front();
  e.flow = flow;
  e.first_seen = at;
  e.last_seen = at;
  index_.emplace(flow, lru_.begin());
  return e;
}

void FlowTable::record(const net::FiveTuple& flow, std::size_t bytes,
                       int level, sim::Duration e2e_ns, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  if (!enabled_) return;
  Entry& e = touch(flow, at);
  e.level = level;
  ++e.packets;
  e.bytes += bytes;
  if (e2e_ns >= 0) e.latency.record(e2e_ns);
#else
  (void)flow;
  (void)bytes;
  (void)level;
  (void)e2e_ns;
  (void)at;
#endif
}

void FlowTable::record_drop(const net::FiveTuple& flow, int level,
                            sim::Time at, int reason) {
#if PRISM_TELEMETRY_ENABLED
  if (!enabled_) return;
  Entry& e = touch(flow, at);
  e.level = level;
  ++e.drops;
  e.last_drop_reasons[e.drop_history_head] =
      static_cast<std::int8_t>(reason);
  e.drop_history_head = static_cast<std::uint8_t>(
      (e.drop_history_head + 1) % kDropHistory);
#else
  (void)flow;
  (void)level;
  (void)at;
  (void)reason;
#endif
}

const FlowTable::Entry* FlowTable::lookup(
    const net::FiveTuple& flow) const {
  const auto it = index_.find(flow);
  return it == index_.end() ? nullptr : &*it->second;
}

std::vector<const FlowTable::Entry*> FlowTable::entries() const {
  std::vector<const Entry*> out;
  out.reserve(index_.size());
  for (const Entry& e : lru_) out.push_back(&e);
  return out;
}

void FlowTable::reset() {
  lru_.clear();
  index_.clear();
  evictions_ = 0;
}

void write_flow_table_json(JsonWriter& w, const FlowTable& table) {
  w.begin_object();
  w.member("enabled", table.enabled());
  w.member("capacity", static_cast<std::uint64_t>(table.capacity()));
  w.member("tracked", static_cast<std::uint64_t>(table.size()));
  w.member("evictions", table.evictions());
  w.key("flows").begin_array();
  for (const auto* e : table.entries()) {
    w.begin_object();
    w.member("flow", e->flow.to_string());
    w.member("class", static_cast<std::int64_t>(e->level));
    w.member("packets", e->packets);
    w.member("bytes", e->bytes);
    w.member("drops", e->drops);
    w.member("first_seen_ns", e->first_seen);
    w.member("last_seen_ns", e->last_seen);
    w.member("latency_count", e->latency.count());
    w.member("latency_mean_ns", e->latency.mean());
    w.member("latency_p50_ns", e->latency.percentile(0.50));
    w.member("latency_p99_ns", e->latency.percentile(0.99));
    w.member("latency_max_ns", e->latency.max());
    w.key("last_drop_reasons").begin_array();
    for (const int code : e->recent_drop_reasons()) {
      w.value(code >= 0 && code < static_cast<int>(fault::DropReason::kCount)
                  ? fault::drop_reason_name(
                        static_cast<fault::DropReason>(code))
                  : "unknown");
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string flow_table_json(const FlowTable& table) {
  JsonWriter w;
  write_flow_table_json(w, table);
  return w.take();
}

}  // namespace prism::telemetry
