#include "telemetry/snapshot.h"

#include <cstdio>

#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace prism::telemetry {

std::string render_softnet_stat(const std::vector<SoftnetRow>& rows) {
  std::string out;
  char buf[192];
  for (const auto& r : rows) {
    std::snprintf(
        buf, sizeof(buf),
        "%08llx %08llx %08llx 00000000 00000000 00000000 00000000 "
        "00000000 00000000 %08llx %08llx %08llx %08x\n",
        static_cast<unsigned long long>(r.processed),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.time_squeeze),
        static_cast<unsigned long long>(r.received_rps),
        static_cast<unsigned long long>(r.flow_limit),
        static_cast<unsigned long long>(r.backlog_len), r.cpu);
    out += buf;
  }
  return out;
}

std::string render_net_dev(const std::vector<NetDevRow>& rows) {
  std::string out =
      "Inter-|   Receive                |  Transmit\n"
      " face |  packets    drop         |  packets\n";
  char buf[128];
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf), "%6s: %10llu %7llu %18llu\n",
                  r.name.c_str(),
                  static_cast<unsigned long long>(r.rx_packets),
                  static_cast<unsigned long long>(r.rx_dropped),
                  static_cast<unsigned long long>(r.tx_packets));
    out += buf;
  }
  return out;
}

void write_registry_json(JsonWriter& w, const Registry& registry) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : registry.counters()) w.member(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : registry.gauges()) {
    w.key(g.name)
        .begin_object()
        .member("value", g.value)
        .member("max", g.max_value)
        .end_object();
  }
  w.end_object();
  w.end_object();
}

std::string registry_json(const Registry& registry) {
  JsonWriter w;
  write_registry_json(w, registry);
  return w.take();
}

void write_telemetry_json(JsonWriter& w, const Telemetry& telemetry,
                          const std::vector<RingStat>& extra_rings) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : telemetry.registry.counters()) {
    w.member(c.name, c.value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : telemetry.registry.gauges()) {
    w.key(g.name)
        .begin_object()
        .member("value", g.value)
        .member("max", g.max_value)
        .end_object();
  }
  w.end_object();
  w.key("rings")
      .begin_object()
      .key("spans")
      .begin_object()
      .member("recorded", telemetry.tracer.recorded())
      .member("retained",
              static_cast<std::uint64_t>(telemetry.tracer.size()))
      .member("dropped", telemetry.tracer.dropped())
      .end_object();
  for (const auto& ring : extra_rings) {
    w.key(ring.name)
        .begin_object()
        .member("retained", ring.retained)
        .member("dropped", ring.dropped)
        .end_object();
  }
  w.end_object();
  w.key("latency");
  write_latency_json(w, telemetry.latency);
  w.key("flows");
  write_flow_table_json(w, telemetry.flows);
  w.end_object();
}

std::string telemetry_json(const Telemetry& telemetry,
                           const std::vector<RingStat>& extra_rings) {
  JsonWriter w;
  write_telemetry_json(w, telemetry, extra_rings);
  return w.take();
}

}  // namespace prism::telemetry
