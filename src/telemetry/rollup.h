// Engine-observability exports: the "prism/lanes" profiler document,
// per-lane Chrome-trace tracks, and the cross-host merge helpers behind
// the "prism/cluster" fleet roll-up.
//
// The per-host telemetry layer (metrics.h, latency.h, snapshot.h) renders
// one host at a time; the Cluster harness needs the fleet view: every
// pair's counters summed by name, latency histograms merged per
// (stage, class) so fleet percentiles come from the merged distribution
// rather than averaged per-host percentiles, and the lane engine's
// profiler (sim/lane_profiler.h) rendered as JSON and as trace tracks.
// All renderers here are pure formatting/merging over snapshots the
// caller already holds — they never touch hot paths.
#pragma once

#include <string>
#include <vector>

#include "telemetry/anomaly.h"
#include "telemetry/latency.h"
#include "telemetry/metrics.h"

namespace prism::sim {
class LaneProfiler;
}

namespace prism::telemetry {

class JsonWriter;
class SpanTracer;

/// Sums counters by name across registries, in first-seen registration
/// order. Counters missing from some registries contribute zero.
std::vector<CounterSample> merge_counters(
    const std::vector<const Registry*>& registries);

/// Merges gauges by name: `value` sums (fleet-wide current level),
/// `max_value` sums the per-host high-water marks (each host's mark is
/// reached at its own instant, so the sum is an upper bound on the
/// fleet-wide peak — the conservative capacity-planning number).
std::vector<GaugeSample> merge_gauges(
    const std::vector<const Registry*>& registries);

/// {"counters": {...}, "gauges": {...}} over the merged samples — the
/// same shape as write_registry_json, so tooling reads both.
void write_merged_registry_json(
    JsonWriter& w, const std::vector<const Registry*>& registries);

/// Merges the per-(stage, class) aggregate histograms of every ledger
/// and emits the same "stages" rows as write_latency_json (count, min,
/// mean, p50/p90/p99, max, exact sum), plus summed unattributed /
/// dropped_in_flight totals. Windows are per-host state and are not
/// merged here.
void write_merged_latency_json(
    JsonWriter& w, const std::vector<const LatencyLedger*>& ledgers);

/// Sums the anomaly-detector firings of every bank (per kind and total),
/// plus retained/overflowed finding counts and the fleet-wide worst
/// inversion (the max across hosts, with the flow that suffered it).
/// Findings themselves stay per-host — read each host's
/// "prism/anomalies" for the frozen evidence; this is the fleet screen
/// that tells the operator which host to open.
void write_merged_anomalies_json(JsonWriter& w,
                                 const std::vector<const AnomalyBank*>& banks);

/// Writes the lane profiler document (the "prism/lanes" proc file):
/// per-lane busy/events/window/inbox totals with critical-path
/// attribution, per-worker wall/barrier/busy/idle accounting, imbalance
/// ratios, and record-ring retention. `attached == false` renders the
/// stub {"attached": false, ...} (profiler never enabled, or telemetry
/// compiled out).
void write_lanes_json(JsonWriter& w, const sim::LaneProfiler* profiler);
std::string lanes_json(const sim::LaneProfiler* profiler);

/// Replays the profiler's retained rounds into `tracer` as per-lane
/// tracks: lane i's executed windows on track `track_base + 2i`
/// ("lane<i>.window" spans over [window_start, window_end), args =
/// events / busy wall-ns) and its owning worker's barrier stalls on
/// track `track_base + 2i + 1` ("lane<i>.stall" spans anchored at the
/// window edge). Stall spans carry *wall-clock* nanosecond durations
/// drawn on the simulated-time axis — the one deliberate unit mix, so
/// barrier convoys line up visually with the windows that caused them.
void export_lane_trace(const sim::LaneProfiler& profiler, SpanTracer& tracer,
                       int track_base = 0);

}  // namespace prism::telemetry
