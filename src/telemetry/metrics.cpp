#include "telemetry/metrics.h"

namespace prism::telemetry {

Counter& Counter::sink() noexcept {
  static Counter sink;
  return sink;
}

Gauge& Gauge::sink() noexcept {
  static Gauge sink;
  return sink;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  counters_.push_back(NamedCounter{std::string(name), Counter{}});
  NamedCounter& slot = counters_.back();
  counter_index_.emplace(slot.name, &slot.counter);
  return slot.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.push_back(NamedGauge{std::string(name), Gauge{}});
  NamedGauge& slot = gauges_.back();
  gauge_index_.emplace(slot.name, &slot.gauge);
  return slot.gauge;
}

std::uint64_t Registry::counter_value(
    std::string_view name) const noexcept {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : it->second->value();
}

std::vector<CounterSample> Registry::counters() const {
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) {
    out.push_back(CounterSample{c.name, c.counter.value()});
  }
  return out;
}

std::vector<GaugeSample> Registry::gauges() const {
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    out.push_back(
        GaugeSample{g.name, g.gauge.value(), g.gauge.max_value()});
  }
  return out;
}

void Registry::reset() {
  for (auto& c : counters_) c.counter.reset();
  for (auto& g : gauges_) g.gauge.reset();
}

}  // namespace prism::telemetry
