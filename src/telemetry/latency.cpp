#include "telemetry/latency.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "stats/table.h"
#include "telemetry/json_writer.h"

namespace prism::telemetry {

const char* latency_stage_name(LatencyStage stage) {
  switch (stage) {
    case LatencyStage::kRingWait: return "ring_wait";
    case LatencyStage::kStage1Service: return "stage1_service";
    case LatencyStage::kStage2Wait: return "stage2_wait";
    case LatencyStage::kStage2Service: return "stage2_service";
    case LatencyStage::kStage3Wait: return "stage3_wait";
    case LatencyStage::kStage3Service: return "stage3_service";
    case LatencyStage::kFlowCache: return "flow_cache";
    case LatencyStage::kEndToEnd: return "end_to_end";
    case LatencyStage::kIrqToPoll: return "irq_to_poll";
    case LatencyStage::kSocketWait: return "socket_wait";
    case LatencyStage::kCount: break;
  }
  return "?";
}

LatencyLedger::LatencyLedger(sim::Duration window_interval,
                             std::size_t window_capacity)
    : interval_(window_interval) {
  if (window_interval <= 0) {
    throw std::invalid_argument(
        "LatencyLedger: window_interval must be positive");
  }
  if (window_capacity == 0) {
    throw std::invalid_argument(
        "LatencyLedger: window_capacity must be positive");
  }
  hists_.reserve(static_cast<std::size_t>(kNumLatencyStages) *
                 static_cast<std::size_t>(kNumLatencyClasses));
  for (int s = 0; s < kNumLatencyStages; ++s) {
    for (int c = 0; c < kNumLatencyClasses; ++c) hists_.emplace_back();
  }
  ring_.resize(window_capacity);
}

void LatencyLedger::set_window_interval(sim::Duration interval) {
  if (interval <= 0) {
    throw std::invalid_argument(
        "LatencyLedger: window_interval must be positive");
  }
  interval_ = interval;
  for (auto& w : ring_) {
    w.index = -1;
    w.count = 0;
    for (auto& h : w.per_level) {
      if (h) h->reset();
    }
  }
  evicted_ = 0;
  late_ = 0;
}

void LatencyLedger::record_delivery(const kernel::SkbTimestamps& ts,
                                    int level) {
#if PRISM_TELEMETRY_ENABLED
  if (!enabled_) return;
  if (ts.nic_rx < 0 || ts.socket_enqueue < 0) {
    ++unattributed_;
    return;
  }
  const int c = clamp_level(level);
  // Consecutive traversed segments telescope: the sum of the recorded
  // durations equals socket_enqueue - nic_rx exactly (the reconciliation
  // test's invariant). Host-path packets skip the -1 stage-2/3 stamps.
  sim::Time prev = ts.nic_rx;
  const auto segment = [&](LatencyStage s, sim::Time t) {
    if (t < 0) return;
    cell(s, c).record(t - prev);
    prev = t;
  };
  segment(LatencyStage::kRingWait, ts.stage1_start);
  segment(LatencyStage::kStage1Service, ts.stage1_done);
  segment(LatencyStage::kStage2Wait, ts.stage2_start);
  segment(LatencyStage::kStage2Service, ts.stage2_done);
  segment(LatencyStage::kStage3Wait, ts.stage3_start);
  segment(LatencyStage::kStage3Service, ts.stage3_done);
  segment(LatencyStage::kFlowCache, ts.flowcache_done);
  const sim::Duration e2e = ts.socket_enqueue - ts.nic_rx;
  cell(LatencyStage::kEndToEnd, c).record(e2e);
  window_record(ts.socket_enqueue, c, e2e);
#else
  (void)ts;
  (void)level;
#endif
}

void LatencyLedger::record_irq_to_poll(sim::Duration d) {
#if PRISM_TELEMETRY_ENABLED
  if (!enabled_) return;
  cell(LatencyStage::kIrqToPoll, 0).record(d);
#else
  (void)d;
#endif
}

void LatencyLedger::record_socket_wait(sim::Duration d, int level) {
#if PRISM_TELEMETRY_ENABLED
  if (!enabled_) return;
  cell(LatencyStage::kSocketWait, clamp_level(level)).record(d);
#else
  (void)d;
  (void)level;
#endif
}

void LatencyLedger::record_dropped(int level) {
#if PRISM_TELEMETRY_ENABLED
  if (!enabled_) return;
  ++dropped_[static_cast<std::size_t>(clamp_level(level))];
#else
  (void)level;
#endif
}

void LatencyLedger::window_record(sim::Time at, int level,
                                  sim::Duration e2e) {
  const std::int64_t w = at / interval_;
  Window& win = ring_[static_cast<std::size_t>(w) % ring_.size()];
  if (win.index != w) {
    if (win.index > w) {
      // Out-of-order record for a window the ring already rotated past
      // (possible when polls on different CPUs compute completion
      // instants ahead of sim-now). Never silent: counted and exported.
      ++late_;
      return;
    }
    if (win.index >= 0 && win.count > 0) ++evicted_;
    win.index = w;
    win.count = 0;
    for (auto& h : win.per_level) {
      if (h) h->reset();
    }
  }
  auto& hist = win.per_level[static_cast<std::size_t>(level)];
  if (!hist) hist = std::make_unique<stats::Histogram>(kWindowSubBucketBits);
  hist->record(e2e);
  ++win.count;
}

const stats::Histogram& LatencyLedger::histogram(LatencyStage stage,
                                                 int level) const {
  return hists_[static_cast<std::size_t>(stage) *
                    static_cast<std::size_t>(kNumLatencyClasses) +
                static_cast<std::size_t>(clamp_level(level))];
}

stats::Histogram LatencyLedger::merged_windows(int level) const {
  stats::Histogram merged(kWindowSubBucketBits);
  for (const auto& w : ring_) {
    if (w.index < 0) continue;
    for (int c = 0; c < kNumLatencyClasses; ++c) {
      if (level >= 0 && c != level) continue;
      const auto& h = w.per_level[static_cast<std::size_t>(c)];
      if (h) merged.merge(*h);
    }
  }
  return merged;
}

LatencyBreakdown LatencyLedger::snapshot() const {
  LatencyBreakdown b;
  b.enabled = enabled_;
  b.window_interval_ns = interval_;
  b.windows_evicted = evicted_;
  b.window_late_drops = late_;
  b.unattributed = unattributed_;
  b.dropped_in_flight = dropped_in_flight();
  for (int s = 0; s < kNumLatencyStages; ++s) {
    for (int c = 0; c < kNumLatencyClasses; ++c) {
      const auto& h = histogram(static_cast<LatencyStage>(s), c);
      if (h.count() == 0) continue;
      StageRow row;
      row.stage = static_cast<LatencyStage>(s);
      row.level = c;
      row.count = h.count();
      row.min_ns = h.min();
      row.mean_ns = h.mean();
      row.p50_ns = h.percentile(0.50);
      row.p90_ns = h.percentile(0.90);
      row.p99_ns = h.percentile(0.99);
      row.max_ns = h.max();
      row.sum_ns = h.sum();
      b.stages.push_back(row);
    }
  }
  // Retained windows, oldest first.
  std::vector<const Window*> retained;
  for (const auto& w : ring_) {
    if (w.index >= 0) retained.push_back(&w);
  }
  std::sort(retained.begin(), retained.end(),
            [](const Window* a, const Window* b) {
              return a->index < b->index;
            });
  for (const Window* w : retained) {
    for (int c = 0; c < kNumLatencyClasses; ++c) {
      const auto& h = w->per_level[static_cast<std::size_t>(c)];
      if (!h || h->count() == 0) continue;
      WindowRow row;
      row.window = w->index;
      row.start_ns = w->index * interval_;
      row.level = c;
      row.count = h->count();
      row.p50_ns = h->percentile(0.50);
      row.p99_ns = h->percentile(0.99);
      b.windows.push_back(row);
    }
  }
  return b;
}

void LatencyLedger::reset() {
  for (auto& h : hists_) h.reset();
  for (auto& w : ring_) {
    w.index = -1;
    w.count = 0;
    for (auto& h : w.per_level) {
      if (h) h->reset();
    }
  }
  unattributed_ = 0;
  evicted_ = 0;
  late_ = 0;
  dropped_.fill(0);
}

void write_latency_json(JsonWriter& w, const LatencyLedger& ledger) {
  const LatencyBreakdown b = ledger.snapshot();
  w.begin_object();
  w.member("enabled", b.enabled);
  w.member("unattributed", b.unattributed);
  w.member("dropped_in_flight", b.dropped_in_flight);
  w.key("stages").begin_array();
  for (const auto& r : b.stages) {
    w.begin_object();
    w.member("stage", latency_stage_name(r.stage));
    w.member("class", static_cast<std::int64_t>(r.level));
    w.member("count", r.count);
    w.member("min_ns", r.min_ns);
    w.member("mean_ns", r.mean_ns);
    w.member("p50_ns", r.p50_ns);
    w.member("p90_ns", r.p90_ns);
    w.member("p99_ns", r.p99_ns);
    w.member("max_ns", r.max_ns);
    w.member("sum_ns", r.sum_ns);
    w.end_object();
  }
  w.end_array();
  w.key("windows").begin_object();
  w.member("interval_ns", b.window_interval_ns);
  w.member("capacity",
           static_cast<std::uint64_t>(ledger.window_capacity()));
  w.member("evicted", b.windows_evicted);
  w.member("late_drops", b.window_late_drops);
  w.key("series").begin_array();
  for (const auto& r : b.windows) {
    w.begin_object();
    w.member("window", r.window);
    w.member("start_ns", r.start_ns);
    w.member("class", static_cast<std::int64_t>(r.level));
    w.member("count", r.count);
    w.member("p50_ns", r.p50_ns);
    w.member("p99_ns", r.p99_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
}

std::string latency_json(const LatencyLedger& ledger) {
  JsonWriter w;
  write_latency_json(w, ledger);
  return w.take();
}

namespace {

std::string us_cell(double ns) { return stats::Table::cell(ns / 1e3); }
std::string us_cell(std::int64_t ns) {
  return stats::Table::cell(static_cast<double>(ns) / 1e3);
}

}  // namespace

std::string render_latency_breakdown(const LatencyBreakdown& b) {
  if (!b.enabled) return "latency ledger disabled\n";
  if (b.stages.empty()) return "latency ledger: no samples\n";
  stats::Table table({"stage", "class", "count", "mean(us)", "p50(us)",
                      "p90(us)", "p99(us)", "max(us)"});
  for (const auto& r : b.stages) {
    table.add_row({latency_stage_name(r.stage), std::to_string(r.level),
                   std::to_string(r.count), us_cell(r.mean_ns),
                   us_cell(r.p50_ns), us_cell(r.p90_ns), us_cell(r.p99_ns),
                   us_cell(r.max_ns)});
  }
  std::string out = table.render();
  if (b.unattributed > 0) {
    out += "unattributed deliveries: " + std::to_string(b.unattributed) +
           "\n";
  }
  return out;
}

std::string render_latency_windows(const LatencyBreakdown& b) {
  if (b.windows.empty()) return "latency windows: no samples\n";
  stats::Table table(
      {"t(ms)", "class", "count", "p50(us)", "p99(us)"});
  for (const auto& r : b.windows) {
    table.add_row({stats::Table::cell(
                       static_cast<double>(r.start_ns) / 1e6, 0),
                   std::to_string(r.level), std::to_string(r.count),
                   us_cell(r.p50_ns), us_cell(r.p99_ns)});
  }
  std::string out = table.render();
  if (b.windows_evicted > 0 || b.window_late_drops > 0) {
    out += "windows evicted: " + std::to_string(b.windows_evicted) +
           ", late drops: " + std::to_string(b.window_late_drops) + "\n";
  }
  return out;
}

}  // namespace prism::telemetry
