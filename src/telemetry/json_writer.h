// Minimal streaming JSON writer.
//
// One shared implementation for every machine-readable artifact the repo
// emits (bench result files, the telemetry block, Chrome trace export),
// replacing the hand-rolled fprintf JSON that used to live in bench/.
// Handles comma placement and string escaping; the caller is responsible
// for balanced begin/end calls.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace prism::telemetry {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }

  JsonWriter& end_object() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }

  JsonWriter& begin_array() {
    separate();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }

  JsonWriter& end_array() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    append_string(v);
    return *this;
  }

  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  JsonWriter& value(bool v) {
    separate();
    out_ += v ? "true" : "false";
    return *this;
  }

  JsonWriter& value(double v) {
    separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
    return *this;
  }

  JsonWriter& value(std::uint64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& value(std::int64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// key + scalar value in one call.
  template <typename T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Inserts `json` verbatim as the next value. The caller guarantees it
  /// is one well-formed JSON value (e.g. a registry_json() document).
  JsonWriter& raw(std::string_view json) {
    separate();
    out_ += json;
    return *this;
  }

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  /// Emits the comma before a new element of the enclosing container, and
  /// marks that the container now has elements.
  void separate() {
    if (pending_key_) {
      // This element is the value of a just-written key; no comma.
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "has elements"
  bool pending_key_ = false;
};

}  // namespace prism::telemetry
