#include "telemetry/span_tracer.h"

#include <cstdio>
#include <stdexcept>

#include "telemetry/json_writer.h"

namespace prism::telemetry {

SpanTracer::SpanTracer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SpanTracer: capacity must be positive");
  }
}

SpanTracer::NameId SpanTracer::intern(std::string_view name) {
  const auto it = name_index_.find(std::string(name));
  if (it != name_index_.end()) return it->second;
  if (names_.size() > 0xffff) {
    throw std::length_error("SpanTracer: name table full");
  }
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), id);
  return id;
}

std::string SpanTracer::export_chrome_trace(
    std::string_view process_name) const {
  JsonWriter w;
  w.begin_object();
  // Ring accounting up front so a consumer can tell whether the timeline
  // is complete: dropped > 0 means the oldest spans were overwritten.
  w.key("traceStats")
      .begin_object()
      .member("recorded", recorded_)
      .member("retained", static_cast<std::uint64_t>(size()))
      .member("dropped", dropped_)
      .end_object();
  w.key("traceEvents").begin_array();

  // Metadata: process name, one thread row per labelled track.
  w.begin_object()
      .member("ph", "M")
      .member("pid", 0)
      .member("tid", 0)
      .member("name", "process_name")
      .key("args")
      .begin_object()
      .member("name", process_name)
      .end_object()
      .end_object();
  for (const auto& [track, label] : track_labels_) {
    w.begin_object()
        .member("ph", "M")
        .member("pid", 0)
        .member("tid", track)
        .member("name", "thread_name")
        .key("args")
        .begin_object()
        .member("name", label)
        .end_object()
        .end_object();
  }

  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const Span& s = at(i);
    w.begin_object();
    w.member("pid", 0).member("tid", static_cast<int>(s.track));
    w.member("name", name(s.name));
    w.member("ts", static_cast<double>(s.begin) / 1e3);
    if (s.instant) {
      w.member("ph", "i").member("s", "t");
    } else {
      w.member("ph", "X");
      w.member("dur", static_cast<double>(s.duration) / 1e3);
      if (s.arg != 0 || s.arg2 != 0) {
        w.key("args").begin_object();
        if (s.arg != 0) {
          w.member("packets", static_cast<std::uint64_t>(s.arg));
        }
        if (s.arg2 != 0) {
          w.member("stage_ns", static_cast<std::uint64_t>(s.arg2));
        }
        w.end_object();
      }
    }
    w.end_object();
  }

  w.end_array();
  w.member("displayTimeUnit", "ns");
  w.end_object();
  return w.take();
}

bool SpanTracer::export_chrome_trace_file(
    const std::string& path, std::string_view process_name) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = export_chrome_trace(process_name);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace prism::telemetry
