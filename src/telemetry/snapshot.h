// /proc-style snapshot renderers over the telemetry registry.
//
// Renders the simulated stack's counters in the formats an operator would
// read on a real host — /proc/net/softnet_stat (one hex row per CPU) and a
// /proc/net/dev-like device table — plus a machine-readable JSON block for
// bench result files. Hosts assemble the rows from their registry; the
// renderers are pure formatting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace prism::telemetry {

class JsonWriter;
struct Telemetry;

/// One CPU row of the softnet_stat table, mirroring the kernel's fields:
/// packets processed by net_rx_action, input-queue drops, budget/time
/// squeezes, RPS-steered packets, current backlog depth.
struct SoftnetRow {
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t time_squeeze = 0;
  std::uint64_t received_rps = 0;
  std::uint64_t backlog_len = 0;
  std::uint32_t cpu = 0;
  /// Packets shed by the per-CPU flow limiter (kernel flow_limit_count).
  /// Declared after `cpu` so existing positional initializers keep their
  /// meaning.
  std::uint64_t flow_limit = 0;
};

/// Renders rows in /proc/net/softnet_stat's hex-column format (13 columns:
/// processed dropped time_squeeze 5x0 cpu_collision received_rps
/// flow_limit backlog_len index).
std::string render_softnet_stat(const std::vector<SoftnetRow>& rows);

/// One device row of the net/dev-like table.
struct NetDevRow {
  std::string name;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_packets = 0;
};

/// Renders a /proc/net/dev-like table (receive/transmit packet and drop
/// columns; the simulator does not track per-device byte counts).
std::string render_net_dev(const std::vector<NetDevRow>& rows);

/// Emits `{"counters": {name: value, ...}, "gauges": {name: {"value": v,
/// "max": m}, ...}}` as the current JSON value of `w`.
void write_registry_json(JsonWriter& w, const Registry& registry);

/// write_registry_json as a standalone document.
std::string registry_json(const Registry& registry);

/// Retention stats of one bounded ring beyond the bundle's own (a poll
/// or packet trace attached to the host), reported under "rings" so
/// truncation is never silent.
struct RingStat {
  std::string name;
  std::uint64_t retained = 0;
  std::uint64_t dropped = 0;
};

/// Full bundle dump: the registry (as write_registry_json) plus a
/// "rings" section reporting the span tracer's recorded/retained/dropped
/// (and any `extra_rings`) so ring truncation is visible in every
/// export, a "latency" section (write_latency_json), and a "flows"
/// section (write_flow_table_json).
void write_telemetry_json(JsonWriter& w, const Telemetry& telemetry,
                          const std::vector<RingStat>& extra_rings = {});

/// write_telemetry_json as a standalone document (the "prism/telemetry"
/// proc file).
std::string telemetry_json(const Telemetry& telemetry,
                           const std::vector<RingStat>& extra_rings = {});

}  // namespace prism::telemetry
