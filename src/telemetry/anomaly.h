// Streaming anomaly detectors over the flight-recorder stamp points.
//
// Each detector evaluates one invariant as packets flow, without post-
// processing: priority inversion (a high-priority packet waited >= T at
// a stage behind lower-priority occupancy), per-class SLO breach (a
// window's p99 end-to-end latency exceeded the target), drop bursts
// (>= N drops inside a window) and overload-governor flapping (>= N
// state transitions inside a window). A firing detector freezes the
// newest flight-recorder events into the finding, giving packet-level
// evidence for exactly the moment the invariant broke — no verbose
// tracing needed up front.
//
// Layering: this is pure telemetry. It never includes kernel headers;
// governor transitions arrive as plain ints via on_governor_transition.
// Detectors observe and count — they never alter the simulation, so an
// armed run is schedule-identical to a disarmed one.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/flow.h"
#include "sim/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace prism::telemetry {

class JsonWriter;

enum class AnomalyKind : std::uint8_t {
  kQueueInversion,  ///< waited >= T at a stage queue behind a lower class
  kRingInversion,   ///< high class waited >= T in the priority-blind ring
  kSloBreach,       ///< a class's windowed p99 exceeded the SLO target
  kDropBurst,       ///< >= N drops within one window
  kGovernorFlap,    ///< >= N governor transitions within one window
  kConvergenceTimeout,  ///< a class's p99 never recovered after a disruption
  kCount,
};

const char* anomaly_kind_name(AnomalyKind kind) noexcept;

/// Priority classes the SLO detector windows over — must mirror
/// kernel::kNumPriorityLevels (static_asserted where both are visible).
constexpr int kNumAnomalyClasses = 4;

/// Detector thresholds. A threshold of 0 disarms that detector; the
/// default bank detects only inversions, so it is deterministic and
/// cheap enough to stay armed everywhere.
struct AnomalyConfig {
  bool detect_inversion = true;
  /// Inversion fires when a class >= 1 packet waits at least this long
  /// at one stamp point (queue: behind a lower class; ring: any wait).
  sim::Duration inversion_wait_ns = sim::microseconds(100);
  /// SLO breach fires when a window's p99 for a class >= 1 exceeds this
  /// (0 = detector off).
  sim::Duration slo_p99_ns = 0;
  sim::Duration slo_window_ns = sim::milliseconds(1);
  /// Drop burst fires once per window when drops reach this count
  /// (0 = detector off).
  std::uint32_t drop_burst_threshold = 0;
  sim::Duration drop_burst_window_ns = sim::milliseconds(1);
  /// Governor flap fires once per window at this many transitions
  /// (0 = detector off).
  std::uint32_t flap_threshold = 0;
  sim::Duration flap_window_ns = sim::milliseconds(10);
  /// Convergence timeout fires when a class's windowed p99 has not
  /// returned to <= slo_p99_ns within this long of a note_disruption()
  /// call (0 = detector off; requires slo_p99_ns > 0 as the target).
  sim::Duration convergence_deadline_ns = 0;
  /// Findings retained with full detail; further firings only count.
  std::size_t max_findings = 32;
  /// Flight-recorder events frozen into each finding.
  std::size_t freeze_events = 32;
};

/// One detector firing, with the frozen recorder slice as evidence.
struct AnomalyFinding {
  AnomalyKind kind = AnomalyKind::kQueueInversion;
  sim::Time at = 0;
  int stage = 0;
  int level = 0;
  int head_level = -1;
  net::FiveTuple flow;
  sim::Duration wait_ns = 0;
  double value = 0;      ///< detector-specific measurement (p99, count...)
  double threshold = 0;  ///< the configured limit it crossed
  std::vector<FlightEvent> frozen;
};

/// Windowed log-bucket latency histogram (16 sub-buckets per octave):
/// enough resolution for a p99-vs-SLO comparison at ~6% error, 4 KiB.
class WindowHist {
 public:
  static constexpr int kSubBits = 4;
  void record(std::uint64_t v) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  /// Upper bound of the bucket holding quantile `q` (0 when empty).
  std::uint64_t quantile(double q) const noexcept;
  void clear() noexcept;

 private:
  std::array<std::uint32_t, 60 * (1 << kSubBits)> counts_{};
  std::uint64_t total_ = 0;
};

/// The per-host detector bank. Fed by the FlightRecorder (stage waits),
/// the SocketDeliverer (every delivery, not just traced flows), the
/// DropLedger observer and the OverloadGovernor transition observer.
class AnomalyBank {
 public:
  AnomalyBank() = default;

  void arm(const AnomalyConfig& config);
  const AnomalyConfig& config() const noexcept { return config_; }
  void set_armed(bool armed) noexcept { armed_ = armed; }
  bool armed() const noexcept {
#if PRISM_TELEMETRY_ENABLED
    return armed_;
#else
    return false;
#endif
  }

  /// Evidence source for frozen slices (optional).
  void set_recorder(const FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  // -------------------------------------------------------------- detectors
  /// From the recorder: one stamp-point wait. stage 1 with head -1 is
  /// the NIC ring (FIFO); stages 2..3 carry the head class the packet
  /// queued behind.
  void on_stage_wait(const net::FiveTuple& flow, int stage, int level,
                     sim::Duration wait_ns, int head_level, sim::Time at);
  /// From the deliverer: every delivered packet (all flows, so the SLO
  /// detector sees the full population, not the sampled one).
  void on_delivery(int level, sim::Duration e2e_ns, sim::Time at);
  /// From the drop ledger observer.
  void on_drop(int reason, int level, sim::Time at);
  /// From the churn harness: a disruption (container stop / migration)
  /// touched class `level` at time `at`. Arms a convergence watch for
  /// that class: the first fully post-disruption SLO window whose p99 is
  /// back at or under slo_p99_ns records a recovery; if no window
  /// recovers within convergence_deadline_ns, kConvergenceTimeout fires
  /// once. Re-arming an already-armed class restarts its clock (the
  /// flow was disrupted again before it converged). The class's current
  /// SLO window restarts at `at` so pre-disruption samples never count
  /// toward the recovery judgement.
  void note_disruption(int level, sim::Time at);
  /// From the overload governor (state codes as ints, cause as text).
  void on_governor_transition(sim::Time at, int from_state, int to_state,
                              const char* cause);

  // ------------------------------------------------------------- inspection
  std::uint64_t fired(AnomalyKind kind) const noexcept {
    return fired_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t fired_total() const noexcept;
  const std::vector<AnomalyFinding>& findings() const noexcept {
    return findings_;
  }
  std::uint64_t findings_dropped() const noexcept { return findings_dropped_; }
  sim::Duration max_inversion_wait_ns() const noexcept {
    return max_inversion_wait_;
  }
  const net::FiveTuple& worst_inversion_flow() const noexcept {
    return worst_inversion_flow_;
  }

  /// One convergence-watch success: the class's p99 was back under the
  /// SLO target by `recovered_at` (the close of the first compliant
  /// post-disruption window).
  struct ConvergenceRecovery {
    int level = 0;
    sim::Time disrupted_at = 0;
    sim::Time recovered_at = 0;
  };
  const std::vector<ConvergenceRecovery>& recoveries() const noexcept {
    return recoveries_;
  }
  /// True while a note_disruption() watch for `level` is still pending
  /// (neither recovered nor timed out).
  bool convergence_watch_armed(int level) const noexcept;

  void reset();

 private:
  void fire(AnomalyFinding finding);

  AnomalyConfig config_;
  bool armed_ = true;
  const FlightRecorder* recorder_ = nullptr;

  std::array<std::uint64_t, static_cast<std::size_t>(AnomalyKind::kCount)>
      fired_{};
  std::vector<AnomalyFinding> findings_;
  std::uint64_t findings_dropped_ = 0;
  sim::Duration max_inversion_wait_ = 0;
  net::FiveTuple worst_inversion_flow_;

  struct SloWindow {
    WindowHist hist;
    sim::Time start = -1;
  };
  std::array<SloWindow, kNumAnomalyClasses> slo_;  ///< one window per class

  struct BurstWindow {
    sim::Time start = -1;
    std::uint32_t count = 0;
    bool fired_this_window = false;
  };
  BurstWindow drops_;
  BurstWindow flaps_;

  struct ConvergenceWatch {
    bool armed = false;
    sim::Time disrupted_at = 0;
  };
  std::array<ConvergenceWatch, kNumAnomalyClasses> convergence_{};
  std::vector<ConvergenceRecovery> recoveries_;
};

/// Renders the "prism/anomalies" proc document: config, per-kind fired
/// counters, worst-inversion stats, recorder stats, findings with their
/// frozen evidence slices.
void anomalies_json(JsonWriter& w, const AnomalyBank& bank,
                    const FlightRecorder* recorder);
std::string anomalies_json(const AnomalyBank& bank,
                           const FlightRecorder* recorder);

/// Renders every finding's frozen slice as a Chrome trace (one track per
/// pipeline stage; dequeue/deliver events become spans covering their
/// wait, the rest instants; findings themselves are instants on track 0)
/// and writes it to `path`. Returns false when the file can't be opened.
bool export_anomaly_trace_file(const AnomalyBank& bank,
                               const std::string& path);

}  // namespace prism::telemetry
