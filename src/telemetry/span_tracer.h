// Simulated-time span tracer with Chrome trace_event export.
//
// The paper made its core argument visible with an eBPF trace of the NAPI
// poll order (Fig. 6). This tracer generalizes that: components record
// sim-time spans (poll iterations, softirq entries, IRQ instants) into a
// preallocated ring — interned name ids and plain stores on the hot path,
// no allocation in steady state — and the whole timeline exports as Chrome
// trace_event JSON, loadable in Perfetto / chrome://tracing. Tracks map to
// CPUs (one row per core, labelled via set_track_label), so vanilla
// interleaving vs PRISM streamlining is visible as alternating span colors
// on one row.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "telemetry/metrics.h"  // for PRISM_TELEMETRY_ENABLED

namespace prism::telemetry {

class SpanTracer {
 public:
  using NameId = std::uint16_t;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// `capacity` bounds the ring; the oldest spans are overwritten (and
  /// counted in dropped()) once it is full.
  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Resolves a span name to a small id, registering it on first use.
  /// Call once per name at attach time and keep the id; the hot path then
  /// records integers only.
  NameId intern(std::string_view name);

  const std::string& name(NameId id) const {
    return names_[static_cast<std::size_t>(id)];
  }

  /// Labels a track row in the exported trace (thread_name metadata),
  /// e.g. track 0 -> "server.cpu0".
  void set_track_label(int track, std::string label) {
    track_labels_[track] = std::move(label);
  }

  /// One recorded event. duration == 0 with instant == true renders as a
  /// Chrome instant event, otherwise as a complete ("X") span.
  struct Span {
    sim::Time begin = 0;
    sim::Duration duration = 0;
    NameId name = 0;
    std::int16_t track = 0;
    std::uint32_t arg = 0;   ///< e.g. packets processed by the poll
    std::uint32_t arg2 = 0;  ///< e.g. in-stage service time, ns
    bool instant = false;
  };

  /// Records a complete span [begin, begin + duration) on `track`.
  /// `arg`/`arg2` export as "packets"/"stage_ns" span args.
  void span(int track, NameId name, sim::Time begin, sim::Duration duration,
            std::uint32_t arg = 0, std::uint32_t arg2 = 0) {
#if PRISM_TELEMETRY_ENABLED
    push(Span{begin, duration, name, static_cast<std::int16_t>(track), arg,
              arg2, false});
#else
    (void)track; (void)name; (void)begin; (void)duration; (void)arg;
    (void)arg2;
#endif
  }

  /// Records a zero-duration marker (IRQ fire, preemption).
  void instant(int track, NameId name, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
    push(Span{at, 0, name, static_cast<std::int16_t>(track), 0, 0, true});
#else
    (void)track; (void)name; (void)at;
#endif
  }

  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Spans overwritten because the ring was full.
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// i-th retained span, oldest first.
  const Span& at(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  void clear() noexcept {
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
  }

  /// Renders the retained spans as a Chrome trace_event JSON document
  /// ({"traceEvents": [...]}). Timestamps are exported in microseconds,
  /// tracks as tids under one pid named `process_name`.
  std::string export_chrome_trace(
      std::string_view process_name = "prism") const;

  /// Writes export_chrome_trace() to `path`; false on I/O error.
  bool export_chrome_trace_file(
      const std::string& path,
      std::string_view process_name = "prism") const;

 private:
  void push(const Span& s) {
    ++recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(s);
      return;
    }
    ring_[head_] = s;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }

  std::size_t capacity_;
  std::vector<Span> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_index_;
  std::map<int, std::string> track_labels_;
};

}  // namespace prism::telemetry
