#include "telemetry/flight_recorder.h"

#include "telemetry/anomaly.h"

namespace prism::telemetry {

namespace {

std::uint64_t round_up_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kRingArrival:
      return "ring_arrival";
    case FlightEventKind::kEnqueue:
      return "enqueue";
    case FlightEventKind::kDequeue:
      return "dequeue";
    case FlightEventKind::kDrop:
      return "drop";
    case FlightEventKind::kDeliver:
      return "deliver";
    case FlightEventKind::kFastPath:
      return "fast_path";
  }
  return "?";
}

void FlightRecorder::configure(const FlightRecorderConfig& config) {
  config_ = config;
  if (config_.sample_period == 0) config_.sample_period = 1;
  config_.sample_period = static_cast<std::uint32_t>(
      round_up_pow2(config_.sample_period));
  sample_mask_ = config_.sample_period - 1;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.clear();
  ring_.reserve(config_.ring_capacity);
  head_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
}

void FlightRecorder::push(const FlightEvent& event) {
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(event);
  } else {
    ring_[head_] = event;
    head_ = (head_ + 1) % config_.ring_capacity;
    ++overwritten_;
  }
  ++recorded_;
}

const FlightEvent& FlightRecorder::at(std::size_t i) const noexcept {
  return ring_[(head_ + i) % ring_.size()];
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t n) const {
  std::vector<FlightEvent> out;
  const std::size_t count = ring_.size() < n ? ring_.size() : n;
  out.reserve(count);
  for (std::size_t i = ring_.size() - count; i < ring_.size(); ++i) {
    out.push_back(at(i));
  }
  return out;
}

void FlightRecorder::reset() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
}

void FlightRecorder::on_ring_arrival(const net::FiveTuple& flow, int level,
                                     sim::Time arrived, sim::Time dequeued) {
#if PRISM_TELEMETRY_ENABLED
  FlightEvent e;
  e.at = dequeued;
  e.flow = flow;
  e.wait_ns = arrived >= 0 ? dequeued - arrived : 0;
  e.kind = FlightEventKind::kRingArrival;
  e.stage = 1;
  e.level = static_cast<std::int8_t>(level);
  e.head_level = -1;  // the NIC ring is a priority-blind FIFO
  push(e);
  if (anomalies_ != nullptr) {
    anomalies_->on_stage_wait(flow, 1, level, e.wait_ns, -1, dequeued);
  }
#else
  (void)flow;
  (void)level;
  (void)arrived;
  (void)dequeued;
#endif
}

void FlightRecorder::on_enqueue(const net::FiveTuple& flow, int stage,
                                int level, int depth, int head_level,
                                sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  FlightEvent e;
  e.at = at;
  e.flow = flow;
  e.depth = depth;
  e.kind = FlightEventKind::kEnqueue;
  e.stage = static_cast<std::uint8_t>(stage);
  e.level = static_cast<std::int8_t>(level);
  e.head_level = static_cast<std::int8_t>(head_level);
  push(e);
#else
  (void)flow;
  (void)stage;
  (void)level;
  (void)depth;
  (void)head_level;
  (void)at;
#endif
}

void FlightRecorder::on_dequeue(const net::FiveTuple& flow, int stage,
                                int level, sim::Duration wait_ns,
                                int head_level_at_enqueue, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  FlightEvent e;
  e.at = at;
  e.flow = flow;
  e.wait_ns = wait_ns;
  e.kind = FlightEventKind::kDequeue;
  e.stage = static_cast<std::uint8_t>(stage);
  e.level = static_cast<std::int8_t>(level);
  e.head_level = static_cast<std::int8_t>(head_level_at_enqueue);
  push(e);
  if (anomalies_ != nullptr) {
    anomalies_->on_stage_wait(flow, stage, level, wait_ns,
                              head_level_at_enqueue, at);
  }
#else
  (void)flow;
  (void)stage;
  (void)level;
  (void)wait_ns;
  (void)head_level_at_enqueue;
  (void)at;
#endif
}

void FlightRecorder::on_drop(const net::FiveTuple& flow, int stage, int level,
                             int drop_reason, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  FlightEvent e;
  e.at = at;
  e.flow = flow;
  e.kind = FlightEventKind::kDrop;
  e.stage = static_cast<std::uint8_t>(stage);
  e.level = static_cast<std::int8_t>(level);
  e.drop_reason = static_cast<std::int8_t>(drop_reason);
  push(e);
#else
  (void)flow;
  (void)stage;
  (void)level;
  (void)drop_reason;
  (void)at;
#endif
}

void FlightRecorder::on_fast_path(const net::FiveTuple& flow, int level,
                                  sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  FlightEvent e;
  e.at = at;
  e.flow = flow;
  e.kind = FlightEventKind::kFastPath;
  e.stage = 1;
  e.level = static_cast<std::int8_t>(level);
  push(e);
#else
  (void)flow;
  (void)level;
  (void)at;
#endif
}

void FlightRecorder::on_deliver(const net::FiveTuple& flow, int level,
                                sim::Duration e2e_ns, sim::Time at) {
#if PRISM_TELEMETRY_ENABLED
  FlightEvent e;
  e.at = at;
  e.flow = flow;
  e.wait_ns = e2e_ns;
  e.kind = FlightEventKind::kDeliver;
  e.stage = 4;
  e.level = static_cast<std::int8_t>(level);
  push(e);
#else
  (void)flow;
  (void)level;
  (void)e2e_ns;
  (void)at;
#endif
}

}  // namespace prism::telemetry
