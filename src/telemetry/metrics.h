// Zero-allocation metrics registry.
//
// The paper's analysis leans on kernel counters (softnet_stat, ring drops,
// NAPI budget exhaustion) to explain where time and packets go. This
// registry gives the simulated stack the same substrate: components
// register named counters/gauges once (cold path, resolves a stable
// handle) and the hot path performs plain uint64 increments through that
// handle — no hashing, no locking, no allocation in steady state.
//
// Unbound instrumentation points write to a process-wide sink counter, so
// hot paths never branch on "is telemetry attached". Building with
// -DPRISM_TELEMETRY_ENABLED=0 (cmake -DPRISM_TELEMETRY=OFF) compiles the
// increments out entirely; registration and snapshotting still work, every
// value just reads 0.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#ifndef PRISM_TELEMETRY_ENABLED
#define PRISM_TELEMETRY_ENABLED 1
#endif

namespace prism::telemetry {

/// Monotonic event counter. Handles stay valid for the registry's (or the
/// sink's) lifetime; increments are a single add on the hot path.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#if PRISM_TELEMETRY_ENABLED
    value_ += n;
#else
    (void)n;
#endif
  }

  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

  /// Process-wide bit bucket for instrumentation points no registry has
  /// been bound to. Its value is meaningless (many components share it);
  /// it exists so hot paths can increment unconditionally.
  static Counter& sink() noexcept;

 private:
  std::uint64_t value_ = 0;
};

/// Level gauge with a high-watermark, for queue/backlog depths.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#if PRISM_TELEMETRY_ENABLED
    value_ = v;
    if (v > max_) max_ = v;
#else
    (void)v;
#endif
  }

  void add(std::int64_t d) noexcept { set(value_ + d); }

  std::int64_t value() const noexcept { return value_; }
  std::int64_t max_value() const noexcept { return max_; }
  void reset() noexcept { value_ = 0; max_ = 0; }

  /// See Counter::sink().
  static Gauge& sink() noexcept;

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Snapshot of one named counter.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Snapshot of one named gauge.
struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max_value = 0;
};

/// Owns named counters and gauges. Registration is idempotent: the same
/// name always resolves to the same handle, so independent components may
/// share an aggregate counter by name. Handle addresses are stable for the
/// registry's lifetime (deque storage, entries are never erased).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) a counter. Cold path: one map lookup.
  Counter& counter(std::string_view name);

  /// Registers (or finds) a gauge.
  Gauge& gauge(std::string_view name);

  /// Value of a registered counter; 0 when the name is unknown.
  std::uint64_t counter_value(std::string_view name) const noexcept;

  /// Snapshots in registration order.
  std::vector<CounterSample> counters() const;
  std::vector<GaugeSample> gauges() const;

  std::size_t counter_count() const noexcept { return counters_.size(); }
  std::size_t gauge_count() const noexcept { return gauges_.size(); }

  /// Zeroes every counter and gauge (handles stay valid).
  void reset();

 private:
  struct NamedCounter {
    std::string name;
    Counter counter;
  };
  struct NamedGauge {
    std::string name;
    Gauge gauge;
  };

  std::deque<NamedCounter> counters_;
  std::deque<NamedGauge> gauges_;
  // Keys are views into the deque-owned names (never erased, so stable).
  std::unordered_map<std::string_view, Counter*> counter_index_;
  std::unordered_map<std::string_view, Gauge*> gauge_index_;
};

}  // namespace prism::telemetry
