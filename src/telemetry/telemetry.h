// Per-host telemetry bundle: metrics registry + timeline span tracer.
#pragma once

#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"

namespace prism::telemetry {

/// Everything one Host's instrumentation binds to. The registry is always
/// live (counters are near-free); the tracer only receives spans while a
/// component has it attached.
struct Telemetry {
  Registry registry;
  SpanTracer tracer;
};

}  // namespace prism::telemetry
