// Per-host telemetry bundle: metrics registry, timeline span tracer,
// latency attribution ledger, and per-flow accounting table.
#pragma once

#include "telemetry/anomaly.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/flow_table.h"
#include "telemetry/latency.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"

namespace prism::telemetry {

/// Everything one Host's instrumentation binds to. The registry is always
/// live (counters are near-free); the tracer only receives spans while a
/// component has it attached. The latency ledger and flow table record on
/// every delivery unless disabled at runtime (set_enabled) or compiled
/// out (-DPRISM_TELEMETRY=OFF).
struct Telemetry {
  Registry registry;
  SpanTracer tracer;
  LatencyLedger latency;
  FlowTable flows;
  FlightRecorder recorder;
  AnomalyBank anomalies;
};

}  // namespace prism::telemetry
