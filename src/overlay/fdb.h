// Bridge forwarding database.
//
// Maps inner destination MACs to local bridge ports (container
// namespaces). Docker's overlay driver programs these entries statically
// when containers attach; the simulator's overlay manager does the same.
// Remote MACs are not stored here — they are resolved at encapsulation
// time by the VXLAN tunnel endpoint table.
//
// Every mutation bumps a generation counter and fires an optional
// mutation hook: consumers that cache FDB-derived state (the overlay
// flow cache, overlay/flow_cache.h) key their entries to the generation
// at fill time, so a remap is visible as staleness instead of a
// mis-delivery. An `add` that replaces an existing MAC's port is counted
// separately (`overwrites`) — silent overwrite is exactly the event a
// cached transform must observe.
//
// Misses split two ways: a MAC the bridge never learned (wiring bug or
// foreign traffic) versus a MAC that was explicitly `remove`d (container
// teardown / migration). The latter is counted separately as an
// *unlearned* miss so churn-induced loss is attributable in telemetry.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "net/mac.h"
#include "telemetry/metrics.h"

namespace prism::overlay {

class Netns;

/// Static MAC -> local port (container) table with miss counting.
class Fdb {
 public:
  /// Maps `mac` to `container`. Returns true when the table changed:
  /// either a new entry, or an existing MAC remapped to a different port
  /// (counted in overwrites()). Re-adding the identical mapping is a
  /// no-op and returns false. Any change bumps generation(). A re-added
  /// MAC is no longer "unlearned": later misses count as plain misses.
  bool add(net::MacAddr mac, Netns& container) {
    auto [it, inserted] = entries_.try_emplace(mac, &container);
    if (!inserted) {
      if (it->second == &container) return false;
      it->second = &container;
      ++overwrites_;
    }
    removed_.erase(mac);
    bump();
    return true;
  }

  /// Removes `mac`. Returns false when no such entry existed (so a typo'd
  /// remove is distinguishable from success); a real removal bumps
  /// generation() and marks the MAC unlearned.
  bool remove(net::MacAddr mac) {
    if (entries_.erase(mac) == 0) return false;
    removed_.insert(mac);
    bump();
    return true;
  }

  /// Returns the container behind `mac`, or nullptr (counted as a miss;
  /// additionally as an unlearned miss when the MAC was removed earlier).
  Netns* lookup(net::MacAddr mac) {
    const auto it = entries_.find(mac);
    if (it == entries_.end()) {
      ++misses_;
      t_miss_->inc();
      if (removed_.count(mac) != 0) {
        ++unlearned_misses_;
        t_unlearned_miss_->inc();
      }
      return nullptr;
    }
    return it->second;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t misses() const noexcept { return misses_; }
  /// Misses on MACs that were explicitly removed (teardown / migration),
  /// as opposed to never-learned MACs. Subset of misses().
  std::uint64_t unlearned_misses() const noexcept { return unlearned_misses_; }
  /// `add` calls that replaced an existing MAC's port with a different one.
  std::uint64_t overwrites() const noexcept { return overwrites_; }
  /// Monotonic mutation counter: incremented by every table change.
  std::uint64_t generation() const noexcept { return generation_; }

  /// Called after every table change (add/remap/remove). One hook per
  /// FDB; the host installs it to invalidate the overlay flow cache.
  void set_mutation_hook(std::function<void()> hook) {
    mutation_hook_ = std::move(hook);
  }

  /// Registers miss counters under `prefix` (e.g. "overlay.br42.fdb.miss"
  /// and "overlay.br42.fdb.unlearned_miss").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_miss_ = &reg.counter(prefix + "fdb.miss");
    t_unlearned_miss_ = &reg.counter(prefix + "fdb.unlearned_miss");
  }

 private:
  void bump() {
    ++generation_;
    if (mutation_hook_) mutation_hook_();
  }

  std::unordered_map<net::MacAddr, Netns*> entries_;
  std::unordered_set<net::MacAddr> removed_;
  std::uint64_t misses_ = 0;
  std::uint64_t unlearned_misses_ = 0;
  std::uint64_t overwrites_ = 0;
  std::uint64_t generation_ = 0;
  std::function<void()> mutation_hook_;
  telemetry::Counter* t_miss_ = &telemetry::Counter::sink();
  telemetry::Counter* t_unlearned_miss_ = &telemetry::Counter::sink();
};

}  // namespace prism::overlay
