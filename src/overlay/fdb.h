// Bridge forwarding database.
//
// Maps inner destination MACs to local bridge ports (container
// namespaces). Docker's overlay driver programs these entries statically
// when containers attach; the simulator's overlay manager does the same.
// Remote MACs are not stored here — they are resolved at encapsulation
// time by the VXLAN tunnel endpoint table.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/mac.h"

namespace prism::overlay {

class Netns;

/// Static MAC -> local port (container) table with miss counting.
class Fdb {
 public:
  void add(net::MacAddr mac, Netns& container) {
    entries_[mac] = &container;
  }

  void remove(net::MacAddr mac) { entries_.erase(mac); }

  /// Returns the container behind `mac`, or nullptr (counted as a miss).
  Netns* lookup(net::MacAddr mac) {
    const auto it = entries_.find(mac);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    return it->second;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::unordered_map<net::MacAddr, Netns*> entries_;
  std::uint64_t misses_ = 0;
};

}  // namespace prism::overlay
