#include "overlay/bridge.h"

#include "net/flow.h"
#include "net/headers.h"
#include "overlay/flow_cache.h"
#include "overlay/netns.h"

namespace prism::overlay {

sim::Duration BridgeStage::process_one(kernel::SkbPtr skb, sim::Time at,
                                       double cost_multiplier) {
  auto cost = static_cast<sim::Duration>(
      static_cast<double>(cost_.bridge_stage_per_packet) *
      cost_multiplier);
  skb->ts.stage2_start = at;
  // The skb carries the parse cached when it entered the pipeline; fall
  // back to parsing the Ethernet header for skbs injected without one.
  Netns* dst = nullptr;
  if (skb->parsed) {
    dst = fdb_.lookup(skb->parsed->eth.dst);
  } else if (const auto eth = net::EthernetHeader::parse(skb->buf.bytes())) {
    dst = fdb_.lookup(eth->dst);
  }
  skb->ts.stage2_done = at + cost;
  if (dst == nullptr) {
    // Unknown destination: a real bridge would flood; with static FDB
    // entries for every container a miss is a wiring error — drop and
    // count so tests catch it. The skb recycles on return.
    ++dropped_;
    t_fdb_drops_->inc();
    if (faults_ != nullptr) {
      faults_->drops.record(fault::DropReason::kFdbMiss, skb->priority);
    }
    return cost;
  }
  ++forwarded_;
  t_forwarded_->inc();
  skb->dst_netns = dst;
  skb->stage = 3;

#if PRISM_FLOWCACHE_ENABLED
  if (flow_cache_ != nullptr && skb->parsed && skb->parsed->udp) {
    // Record the resolved transform for this flow's next packets. The
    // generation stored is the one captured at this skb's stage-1
    // classification, so any mutation since then leaves the entry stale.
    flow_cache_->insert(net::flow_of(*skb->parsed), vni_, dst,
                        skb->priority, skb->flowcache_gen);
  }
#endif

  // Receive Packet Steering: hash the inner flow across the configured
  // CPUs at the netif_rx boundary. PRISM-sync high-priority packets are
  // processed inline before netif_rx is reached, so they are exempt.
  const bool sync_inline =
      skb->high_priority() &&
      transition_.mode() == kernel::NapiMode::kPrismSync;
  if (!rps_targets_.empty() && !sync_inline) {
    const std::size_t hash =
        skb->parsed
            ? std::hash<net::FiveTuple>{}(net::flow_of(*skb->parsed))
            : [&] {
                const auto inner = net::parse_frame(skb->buf.bytes());
                return inner ? std::hash<net::FiveTuple>{}(
                                   net::flow_of(*inner))
                             : std::size_t{0};
              }();
    const RpsTarget& target = rps_targets_[hash % rps_targets_.size()];
    if (target.backlog != &backlog_) {
      ++rps_steered_;
      t_rps_steered_->inc();
      cost += cost_.rps_steer_cost;
      // The packet becomes visible on the target CPU one IPI later. The
      // skb is move-captured (InlineFn supports move-only callables): if
      // the simulation ends before the IPI event runs, the skb recycles
      // with the event queue instead of leaking.
      sim_->schedule_at(at + cost + cost_.ipi_latency,
                        [this, target, skb = std::move(skb)]() mutable {
                          target.transition->transit(std::move(skb),
                                                     sim_->now(),
                                                     *target.backlog);
                        });
      return cost;
    }
  }

  return cost + transition_.transit(std::move(skb), at + cost, backlog_,
                                    cost_multiplier);
}

Bridge::Bridge(std::uint32_t vni, const kernel::CostModel& cost, Fdb& fdb,
               const std::vector<kernel::StageTransition*>& transitions,
               const std::vector<kernel::QueueNapi*>& backlogs)
    : vni_(vni) {
  cells_.reserve(transitions.size());
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    Cell cell;
    cell.stage = std::make_unique<BridgeStage>(
        "br", cost, fdb, *transitions[i], *backlogs[i]);
    cell.napi = std::make_unique<kernel::QueueNapi>("br", *cell.stage,
                                                    cost);
    cells_.push_back(std::move(cell));
  }
}

}  // namespace prism::overlay
