// Network namespaces.
//
// Every host has a root namespace (its native network identity) and one
// namespace per container. A namespace bundles the identity (IP, MAC), the
// socket table packets demux into, a neighbour (ARP) table for its L2
// domain, and the egress hook the owning Host installs (native TX for the
// root namespace; veth -> bridge -> VXLAN for containers).
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "kernel/socket.h"
#include "net/ip.h"
#include "net/mac.h"
#include "net/packet.h"

namespace prism::overlay {

/// One network namespace (host root ns or a container ns).
class Netns {
 public:
  Netns(std::string name, net::Ipv4Addr ip, net::MacAddr mac,
        bool is_container)
      : name_(std::move(name)),
        ip_(ip),
        mac_(mac),
        is_container_(is_container) {}

  Netns(const Netns&) = delete;
  Netns& operator=(const Netns&) = delete;

  const std::string& name() const noexcept { return name_; }
  net::Ipv4Addr ip() const noexcept { return ip_; }
  net::MacAddr mac() const noexcept { return mac_; }
  bool is_container() const noexcept { return is_container_; }

  kernel::SocketTable& sockets() noexcept { return sockets_; }

  /// Static neighbour table (the testbed plays the ARP role).
  void add_neighbor(net::Ipv4Addr ip, net::MacAddr mac) {
    neighbors_[ip] = mac;
  }

  /// Resolves a destination IP in this namespace's L2 domain; throws
  /// std::out_of_range for unknown neighbours (no dynamic ARP in the
  /// simulator — wiring bugs should fail loudly).
  net::MacAddr neighbor(net::Ipv4Addr ip) const {
    const auto it = neighbors_.find(ip);
    if (it == neighbors_.end()) {
      throw std::out_of_range("Netns " + name_ + ": no neighbor for " +
                              ip.to_string());
    }
    return it->second;
  }

  /// Egress hook, installed by the owning Host: transmits a fully built
  /// L2 frame out of this namespace. For containers this performs the
  /// overlay encapsulation.
  std::function<void(net::PacketBuf)> egress;

 private:
  std::string name_;
  net::Ipv4Addr ip_;
  net::MacAddr mac_;
  bool is_container_;
  kernel::SocketTable sockets_;
  std::unordered_map<net::Ipv4Addr, net::MacAddr> neighbors_;
};

}  // namespace prism::overlay
