// Network namespaces.
//
// Every host has a root namespace (its native network identity) and one
// namespace per container. A namespace bundles the identity (IP, MAC), the
// socket table packets demux into, a neighbour (ARP) table for its L2
// domain, and the egress hook the owning Host installs (native TX for the
// root namespace; veth -> bridge -> VXLAN for containers).
//
// Container namespaces have a lifecycle (kRunning -> kDraining -> kDead)
// driven by Host::stop_container. The namespace object itself is never
// freed — torn-down namespaces stay in the host's container table as
// tombstones, so any Netns* still cached in an skb, a flow-cache entry or
// a VTEP route remains a valid pointer that *observes* the dead state and
// turns the packet into a counted kDeadNetns drop, instead of a dangling
// dereference.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "kernel/socket.h"
#include "net/ip.h"
#include "net/mac.h"
#include "net/packet.h"

namespace prism::overlay {

/// Container namespace lifecycle.
///
///   kRunning  — normal operation: delivers to sockets, may transmit.
///   kDraining — teardown has begun: no new deliveries (in-flight packets
///               drop as kDeadNetns), no new transmissions; already-queued
///               datagrams may still be consumed by the application until
///               the drain deadline.
///   kDead     — teardown complete: sockets are unbound and their queues
///               purged (storage recycled). The object persists as a
///               tombstone.
enum class NetnsState : int { kRunning = 0, kDraining, kDead };

inline const char* netns_state_name(NetnsState s) noexcept {
  switch (s) {
    case NetnsState::kRunning:
      return "running";
    case NetnsState::kDraining:
      return "draining";
    case NetnsState::kDead:
      return "dead";
  }
  return "unknown";
}

/// One network namespace (host root ns or a container ns).
class Netns {
 public:
  Netns(std::string name, net::Ipv4Addr ip, net::MacAddr mac,
        bool is_container)
      : name_(std::move(name)),
        ip_(ip),
        mac_(mac),
        is_container_(is_container) {}

  Netns(const Netns&) = delete;
  Netns& operator=(const Netns&) = delete;

  const std::string& name() const noexcept { return name_; }
  net::Ipv4Addr ip() const noexcept { return ip_; }
  net::MacAddr mac() const noexcept { return mac_; }
  bool is_container() const noexcept { return is_container_; }

  NetnsState state() const noexcept { return state_; }
  /// True while the namespace accepts deliveries and may transmit.
  /// Draining already refuses both: "stop" is the observable instant.
  bool accepting() const noexcept { return state_ == NetnsState::kRunning; }
  bool dead() const noexcept { return state_ == NetnsState::kDead; }

  /// State transitions are owned by Host::stop_container /
  /// Host::restart_container; they only ever move forward
  /// (Running -> Draining -> Dead). Restart creates a *new* namespace.
  void begin_draining() noexcept {
    if (state_ == NetnsState::kRunning) state_ = NetnsState::kDraining;
  }
  void mark_dead() noexcept { state_ = NetnsState::kDead; }

  /// VNI of the overlay this container attaches to (0 for the root ns).
  std::uint32_t vni() const noexcept { return vni_; }
  void set_vni(std::uint32_t vni) noexcept { vni_ = vni; }

  kernel::SocketTable& sockets() noexcept { return sockets_; }

  /// Static neighbour table (the testbed plays the ARP role).
  void add_neighbor(net::Ipv4Addr ip, net::MacAddr mac) {
    neighbors_[ip] = mac;
  }

  /// Resolves a destination IP in this namespace's L2 domain. A missing
  /// neighbour returns nullopt; senders turn that into a counted
  /// kUnroutable drop (no dynamic ARP in the simulator, but a wiring gap
  /// degrades to an attributable drop instead of aborting the lane).
  std::optional<net::MacAddr> neighbor(net::Ipv4Addr ip) const {
    const auto it = neighbors_.find(ip);
    if (it == neighbors_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t neighbor_count() const noexcept { return neighbors_.size(); }

  /// Egress hook, installed by the owning Host: transmits a fully built
  /// L2 frame out of this namespace. For containers this performs the
  /// overlay encapsulation.
  std::function<void(net::PacketBuf)> egress;

 private:
  std::string name_;
  net::Ipv4Addr ip_;
  net::MacAddr mac_;
  bool is_container_;
  NetnsState state_ = NetnsState::kRunning;
  std::uint32_t vni_ = 0;
  kernel::SocketTable sockets_;
  std::unordered_map<net::Ipv4Addr, net::MacAddr> neighbors_;
};

}  // namespace prism::overlay
