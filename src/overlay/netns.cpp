#include "overlay/netns.h"

// Header-only logic; this translation unit anchors the target's source
// list.
