// Linux bridge with gro_cells NAPI — stage 2 of the overlay pipeline.
//
// Decapsulated inner frames land in the bridge's per-CPU gro_cell queue
// (the bridge is the one virtual device with its own NAPI implementation,
// paper §II-A3). When polled, the bridge stage parses the inner Ethernet
// header, resolves the destination container through the FDB, and hands
// the packet to the veth/backlog stage via the netif_rx stage transition.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/cost_model.h"
#include "kernel/napi.h"
#include "kernel/stage_transition.h"
#include "overlay/fdb.h"

namespace prism::overlay {

class FlowCache;

/// One RPS steering destination: another CPU's stage-transition helper
/// and backlog napi.
struct RpsTarget {
  kernel::StageTransition* transition = nullptr;
  kernel::QueueNapi* backlog = nullptr;
};

/// Per-CPU bridge forwarding stage.
class BridgeStage final : public kernel::PacketStage {
 public:
  BridgeStage(std::string name, const kernel::CostModel& cost, Fdb& fdb,
              kernel::StageTransition& transition,
              kernel::QueueNapi& backlog)
      : name_(std::move(name)),
        cost_(cost),
        fdb_(fdb),
        transition_(transition),
        backlog_(backlog) {}

  /// Enables Receive Packet Steering at the bridge->veth handoff (where
  /// the kernel's netif_rx applies RPS): flows are hashed across
  /// `targets`. PRISM-sync high-priority packets are exempt — they run
  /// to completion in the current context before netif_rx is reached
  /// (paper §III-B1).
  void enable_rps(std::vector<RpsTarget> targets, sim::Simulator& sim) {
    rps_targets_ = std::move(targets);
    sim_ = &sim;
  }

  sim::Duration process_one(kernel::SkbPtr skb, sim::Time at,
                            double cost_multiplier) override;

  const std::string& name() const override { return name_; }

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t rps_steered() const noexcept { return rps_steered_; }

  /// Registers forwarding counters under `prefix` (e.g. "overlay.br42.").
  /// The per-CPU stages of one bridge share a prefix and aggregate.
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_forwarded_ = &reg.counter(prefix + "forwarded");
    t_fdb_drops_ = &reg.counter(prefix + "fdb_drops");
    t_rps_steered_ = &reg.counter(prefix + "rps_steered");
  }

  /// Attaches the host's fault layer: FDB-miss drops are attributed to
  /// the drop ledger. nullptr detaches.
  void set_faults(fault::FaultLayer* faults) noexcept { faults_ = faults; }

  /// Attaches the host's overlay flow cache: every successful FDB
  /// resolve of a UDP flow fills (or refreshes) the flow's cached
  /// transform under `vni`. nullptr detaches.
  void set_flow_cache(FlowCache* cache, std::uint32_t vni) noexcept {
    flow_cache_ = cache;
    vni_ = vni;
  }

 private:
  std::string name_;
  const kernel::CostModel& cost_;
  fault::FaultLayer* faults_ = nullptr;
  FlowCache* flow_cache_ = nullptr;
  std::uint32_t vni_ = 0;
  Fdb& fdb_;
  kernel::StageTransition& transition_;
  kernel::QueueNapi& backlog_;
  std::vector<RpsTarget> rps_targets_;
  sim::Simulator* sim_ = nullptr;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rps_steered_ = 0;
  telemetry::Counter* t_forwarded_ = &telemetry::Counter::sink();
  telemetry::Counter* t_fdb_drops_ = &telemetry::Counter::sink();
  telemetry::Counter* t_rps_steered_ = &telemetry::Counter::sink();
};

/// One overlay bridge (one VNI) on one host: FDB plus per-CPU gro_cells.
class Bridge {
 public:
  /// `backlogs[i]` / `transitions[i]` are CPU i's backlog napi and stage
  /// transition helper; one gro_cell is created per CPU.
  Bridge(std::uint32_t vni, const kernel::CostModel& cost, Fdb& fdb,
         const std::vector<kernel::StageTransition*>& transitions,
         const std::vector<kernel::QueueNapi*>& backlogs);

  std::uint32_t vni() const noexcept { return vni_; }

  /// The gro_cell napi of CPU `cpu` (decap enqueues here).
  kernel::QueueNapi& cell(int cpu) {
    return *cells_[static_cast<std::size_t>(cpu)].napi;
  }

  BridgeStage& stage(int cpu) {
    return *cells_[static_cast<std::size_t>(cpu)].stage;
  }

 private:
  struct Cell {
    std::unique_ptr<BridgeStage> stage;
    std::unique_ptr<kernel::QueueNapi> napi;
  };

  std::uint32_t vni_;
  std::vector<Cell> cells_;
};

}  // namespace prism::overlay
