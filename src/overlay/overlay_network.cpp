#include "overlay/overlay_network.h"

namespace prism::overlay {

Netns& OverlayNetwork::add_container(kernel::Host& host,
                                     const std::string& name,
                                     net::Ipv4Addr ip) {
  Netns& ns = host.add_container(name, ip, vni_);
  for (const auto& other : endpoints_) {
    // Containers resolve each other directly (static ARP).
    ns.add_neighbor(other.ns->ip(), other.ns->mac());
    other.ns->add_neighbor(ip, ns.mac());
    // Cross-host pairs need VTEP routes in both directions.
    if (other.host != &host) {
      host.add_overlay_route(vni_, other.ns->mac(), other.host->ip(),
                             other.host->mac());
      other.host->add_overlay_route(vni_, ns.mac(), host.ip(),
                                    host.mac());
    }
  }
  endpoints_.push_back(Endpoint{&host, &ns});
  return ns;
}

}  // namespace prism::overlay
