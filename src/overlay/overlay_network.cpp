#include "overlay/overlay_network.h"

#include <stdexcept>

namespace prism::overlay {

Netns& OverlayNetwork::add_container(kernel::Host& host,
                                     const std::string& name,
                                     net::Ipv4Addr ip) {
  Netns& ns = host.add_container(name, ip, vni_);
  for (const auto& other : endpoints_) {
    // Containers resolve each other directly (static ARP).
    ns.add_neighbor(other.ns->ip(), other.ns->mac());
    other.ns->add_neighbor(ip, ns.mac());
    // Cross-host pairs need VTEP routes in both directions.
    if (other.host != &host) {
      host.add_overlay_route(vni_, other.ns->mac(), other.host->ip(),
                             other.host->mac());
      other.host->add_overlay_route(vni_, ns.mac(), host.ip(),
                                    host.mac());
    }
  }
  endpoints_.push_back(Endpoint{&host, &ns});
  return ns;
}

OverlayNetwork::Endpoint& OverlayNetwork::endpoint_of(const Netns& ns) {
  for (auto& e : endpoints_) {
    if (e.ns == &ns) return e;
  }
  throw std::invalid_argument("OverlayNetwork: unknown container " +
                              ns.name());
}

kernel::Host& OverlayNetwork::host_of(const Netns& ns) {
  return *endpoint_of(ns).host;
}

void OverlayNetwork::stop_container(Netns& ns, sim::Duration drain) {
  Endpoint& e = endpoint_of(ns);
  e.host->stop_container(*e.ns, drain);
}

Netns& OverlayNetwork::restart_container(Netns& ns) {
  Endpoint& e = endpoint_of(ns);
  Netns& fresh = e.host->restart_container(*e.ns);
  // The fresh namespace starts with an empty neighbour table; re-wire it
  // against every other endpoint. Peers keep their entries (the IP/MAC
  // identity is unchanged).
  for (const auto& other : endpoints_) {
    if (other.ns == e.ns) continue;
    fresh.add_neighbor(other.ns->ip(), other.ns->mac());
  }
  e.ns = &fresh;
  return fresh;
}

Netns& OverlayNetwork::migrate_container(Netns& ns, kernel::Host& dst,
                                         sim::Duration drain) {
  Endpoint& e = endpoint_of(ns);
  if (e.host == &dst) {
    throw std::invalid_argument(
        "OverlayNetwork: migrate destination already runs " + ns.name());
  }
  // Source side: the old incarnation drains (its FDB entry unlearns and
  // the flow-cache generation bumps immediately, so packets still in the
  // source pipeline drop as counted kDeadNetns / unlearned FDB misses).
  e.host->stop_container(*e.ns, drain);

  // Destination side: the new incarnation keeps the identity, so peers'
  // ARP entries stay valid; it is live immediately.
  Netns& fresh = dst.adopt_container(ns.name(), ns.ip(), ns.mac(), vni_);

  // Control-plane rewiring, in invalidation-safe order: every route
  // update bumps the affected host's flow-cache generation.
  for (const auto& other : endpoints_) {
    if (other.ns == e.ns) continue;
    fresh.add_neighbor(other.ns->ip(), other.ns->mac());
    if (other.host != &dst) {
      // Remote peers (including the source host, if it still runs other
      // endpoints) now reach this MAC behind dst's VTEP; dst needs return
      // routes to them.
      dst.add_overlay_route(vni_, other.ns->mac(), other.host->ip(),
                            other.host->mac());
      other.host->add_overlay_route(vni_, fresh.mac(), dst.ip(),
                                    dst.mac());
    }
  }
  // dst itself held a VTEP route for this MAC while it was remote;
  // withdraw it so container_egress falls back to local bridge delivery.
  dst.remove_overlay_route(vni_, fresh.mac());

  e.host = &dst;
  e.ns = &fresh;
  return fresh;
}

}  // namespace prism::overlay
