// Multi-host overlay network manager (the Docker-overlay control plane).
//
// Creating containers on an overlay involves bookkeeping on every
// participating host: bridge + FDB entries for local containers, VTEP
// routes for remote ones, and neighbour (ARP) entries inside every
// container namespace. This class performs that wiring, playing the role
// of Docker's distributed control plane in the paper's testbed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/host.h"
#include "net/ip.h"
#include "overlay/netns.h"

namespace prism::overlay {

/// One VXLAN overlay network spanning any number of hosts.
class OverlayNetwork {
 public:
  explicit OverlayNetwork(std::uint32_t vni) : vni_(vni) {}

  std::uint32_t vni() const noexcept { return vni_; }

  /// Creates a container on `host`, attached to this overlay, and wires
  /// FDB/VTEP routes and neighbours across all existing containers.
  Netns& add_container(kernel::Host& host, const std::string& name,
                       net::Ipv4Addr ip);

  /// Begins teardown of `ns` on its current host (see
  /// Host::stop_container). The endpoint record is kept: a later
  /// restart_container or migrate_container revives it.
  void stop_container(Netns& ns, sim::Duration drain = 0);

  /// Creates a fresh incarnation of a stopped container on its current
  /// host and re-wires its neighbour table against every other endpoint.
  /// Returns the new namespace; the endpoint record now points at it.
  Netns& restart_container(Netns& ns);

  /// Migrates `ns` to `dst`: stops it on the source host (draining for
  /// `drain`), creates the new incarnation on `dst` with the same
  /// identity, and repoints every host's VTEP routes (withdrawing `dst`'s
  /// own route so delivery goes local). Returns the new namespace.
  Netns& migrate_container(Netns& ns, kernel::Host& dst,
                           sim::Duration drain = 0);

  /// The host currently running `ns` (or that ran it, for a stopped
  /// endpoint). Throws std::invalid_argument for a namespace this overlay
  /// never managed.
  kernel::Host& host_of(const Netns& ns);

  std::size_t container_count() const noexcept {
    return endpoints_.size();
  }

 private:
  struct Endpoint {
    kernel::Host* host;
    Netns* ns;
  };

  Endpoint& endpoint_of(const Netns& ns);

  std::uint32_t vni_;
  std::vector<Endpoint> endpoints_;
};

}  // namespace prism::overlay
