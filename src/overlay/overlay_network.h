// Multi-host overlay network manager (the Docker-overlay control plane).
//
// Creating containers on an overlay involves bookkeeping on every
// participating host: bridge + FDB entries for local containers, VTEP
// routes for remote ones, and neighbour (ARP) entries inside every
// container namespace. This class performs that wiring, playing the role
// of Docker's distributed control plane in the paper's testbed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/host.h"
#include "net/ip.h"
#include "overlay/netns.h"

namespace prism::overlay {

/// One VXLAN overlay network spanning any number of hosts.
class OverlayNetwork {
 public:
  explicit OverlayNetwork(std::uint32_t vni) : vni_(vni) {}

  std::uint32_t vni() const noexcept { return vni_; }

  /// Creates a container on `host`, attached to this overlay, and wires
  /// FDB/VTEP routes and neighbours across all existing containers.
  Netns& add_container(kernel::Host& host, const std::string& name,
                       net::Ipv4Addr ip);

  std::size_t container_count() const noexcept {
    return endpoints_.size();
  }

 private:
  struct Endpoint {
    kernel::Host* host;
    Netns* ns;
  };

  std::uint32_t vni_;
  std::vector<Endpoint> endpoints_;
};

}  // namespace prism::overlay
