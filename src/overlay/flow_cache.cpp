#include "overlay/flow_cache.h"

namespace prism::overlay {

const FlowCacheEntry* FlowCache::lookup(const net::FiveTuple& flow,
                                        std::uint32_t vni) {
#if PRISM_FLOWCACHE_ENABLED
  if (!enabled_) return nullptr;
  const FlowCacheKey key{flow, vni};
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    t_misses_->inc();
    return nullptr;
  }
  if (it->second->second.generation != generation_) {
    // Stale: the world changed since this transform was recorded. Drop
    // the entry and report a miss — the slow path re-resolves and
    // repopulates with the current generation.
    ++stale_;
    ++misses_;
    t_stale_->inc();
    t_misses_->inc();
    lru_.erase(it->second);
    map_.erase(it);
    return nullptr;
  }
  // Move to MRU position. splice() keeps iterators valid.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  t_hits_->inc();
  return &it->second->second;
#else
  (void)flow;
  (void)vni;
  return nullptr;
#endif
}

void FlowCache::insert(const net::FiveTuple& flow, std::uint32_t vni,
                       Netns* dst, int priority,
                       std::uint64_t generation) {
#if PRISM_FLOWCACHE_ENABLED
  if (!enabled_ || dst == nullptr) return;
  const FlowCacheKey key{flow, vni};
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place (e.g. repopulation after an invalidation).
    it->second->second = FlowCacheEntry{dst, priority, generation};
    lru_.splice(lru_.begin(), lru_, it->second);
    ++insertions_;
    t_insertions_->inc();
    return;
  }
  if (map_.size() >= capacity_) {
    const auto& victim = lru_.back();
    map_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
    t_evictions_->inc();
  }
  lru_.emplace_front(key, FlowCacheEntry{dst, priority, generation});
  map_.emplace(key, lru_.begin());
  ++insertions_;
  t_insertions_->inc();
#else
  (void)flow;
  (void)vni;
  (void)dst;
  (void)priority;
  (void)generation;
#endif
}

void FlowCache::reset() {
  lru_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
  stale_ = 0;
  insertions_ = 0;
  evictions_ = 0;
  invalidations_ = 0;
}

void FlowCache::bind_telemetry(telemetry::Registry& reg,
                               const std::string& prefix) {
  t_hits_ = &reg.counter(prefix + "hits");
  t_misses_ = &reg.counter(prefix + "misses");
  t_stale_ = &reg.counter(prefix + "stale");
  t_insertions_ = &reg.counter(prefix + "insertions");
  t_evictions_ = &reg.counter(prefix + "evictions");
  t_invalidations_ = &reg.counter(prefix + "invalidations");
}

}  // namespace prism::overlay
