// ONCache-style per-flow overlay transform cache — the stage-1 fast path.
//
// Every overlay packet today walks the full reception pipeline: VXLAN
// decap (stage 1), bridge FDB lookup (stage 2), veth/backlog transit and
// protocol delivery (stage 3) — even the millionth packet of a long-lived
// flow, whose transform never changes. Following "ONCache: A Cache-Based
// Low-Overhead Container Overlay Network" (PAPERS.md), this cache records
// the complete transform the slow path computed for a flow's first packet
// — the decap decision, the FDB-resolved destination namespace, and the
// classified PRISM priority — keyed by (inner five-tuple, VNI). Hits let
// subsequent packets skip from the stage-1 poll directly to socket
// delivery, charging CostModel::flowcache_lookup + flowcache_fast_path
// instead of the stage-2/3 machinery.
//
// Correctness hinges on invalidation, not on the lookup. The cache keeps
// one monotonic generation counter; every entry records the generation
// current when its flow was *classified* (stage 1 of the filling packet).
// Any event that could change a transform bumps the generation:
//
//   * every FDB add/remove/remap (Fdb::set_mutation_hook),
//   * every overlay-route change (Host::add_overlay_route),
//   * every PriorityDb mutation (classification could change),
//   * every NAPI-mode switch (vanilla does not classify; its fills say 0),
//   * every fault-injected decap corruption (the transform just observed
//     bytes the slow path would handle differently).
//
// A hit whose recorded generation is stale counts as a miss (the entry is
// dropped and the packet re-walks the slow path, which repopulates), so a
// packet is never delivered through an invalidated transform. Because the
// generation is captured at classification time and checked at use time,
// a mutation that lands between a packet's classification and its stage-2
// fill also voids the entry — the fill is dead on arrival instead of
// poisoning the cache.
//
// The cache is per-host (one host per event lane), so the parallel lane
// engine needs no synchronization and same-seed runs stay byte-identical
// at any thread count. Eviction is LRU over a bounded table — fully
// deterministic, no clocks or randomness.
//
// Compiled out under -DPRISM_FLOWCACHE=OFF: lookups return nothing,
// inserts are no-ops, and the datapath always walks the slow path.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "net/flow.h"
#include "telemetry/metrics.h"

#ifndef PRISM_FLOWCACHE_ENABLED
#define PRISM_FLOWCACHE_ENABLED 1
#endif

namespace prism::overlay {

class Netns;

/// Cache key: the decapsulated flow plus the overlay it belongs to (two
/// VNIs may legitimately carry the same inner five-tuple).
struct FlowCacheKey {
  net::FiveTuple flow;
  std::uint32_t vni = 0;
  bool operator==(const FlowCacheKey&) const = default;
};

struct FlowCacheKeyHash {
  std::size_t operator()(const FlowCacheKey& k) const noexcept {
    // Splitmix-style fold of the (deterministic) flow hash with the VNI,
    // matching std::hash<FiveTuple>'s platform independence.
    std::uint64_t h = std::hash<net::FiveTuple>{}(k.flow) ^
                      (std::uint64_t{k.vni} * 0x9e3779b97f4a7c15ull);
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// The recorded transform: everything the slow path computed that the
/// fast path replays.
struct FlowCacheEntry {
  Netns* dst = nullptr;  ///< FDB-resolved destination namespace
  int priority = 0;      ///< PriorityDb::classify at fill (0 in vanilla)
  std::uint64_t generation = 0;  ///< cache generation at classification
};

/// Bounded per-host flow -> transform cache with generation invalidation.
class FlowCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit FlowCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? kDefaultCapacity : capacity) {}

  FlowCache(const FlowCache&) = delete;
  FlowCache& operator=(const FlowCache&) = delete;

  /// Runtime switch (default off — the cache is opt-in per host). Off,
  /// lookup() always misses without counting and insert() is a no-op.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept {
#if PRISM_FLOWCACHE_ENABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Current generation; captured at classification time and stored into
  /// the filling skb so the entry validates against the world the
  /// classification saw.
  std::uint64_t generation() const noexcept { return generation_; }

  /// Voids every cached transform by bumping the generation. Entries are
  /// reclaimed lazily, on their next (stale) hit or by LRU eviction.
  void invalidate() noexcept {
    ++generation_;
    ++invalidations_;
    t_invalidations_->inc();
  }

  /// Returns the still-valid transform for (flow, vni), or nullptr. A
  /// generation-stale entry counts in stale_hits(), is dropped, and reads
  /// as a miss — the caller re-walks the slow path, which repopulates.
  const FlowCacheEntry* lookup(const net::FiveTuple& flow,
                               std::uint32_t vni);

  /// Records the transform the slow path just resolved. `generation` is
  /// the value generation() returned when this packet was classified; a
  /// fill that raced an invalidation stores an already-stale entry, which
  /// the next lookup discards. No-op when disabled or compiled out.
  void insert(const net::FiveTuple& flow, std::uint32_t vni, Netns* dst,
              int priority, std::uint64_t generation);

  // ------------------------------------------------------------- stats
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  /// Lookups that found an entry from a voided generation (subset of
  /// misses() — every stale hit is also counted as a miss).
  std::uint64_t stale_hits() const noexcept { return stale_; }
  std::uint64_t insertions() const noexcept { return insertions_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t invalidations() const noexcept { return invalidations_; }
  /// Steady-state quality: hits / (hits + misses), 0 when idle.
  double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

  /// Drops every entry and counter (generation and configuration kept).
  void reset();

  /// Registers cache counters under `prefix` (e.g. "flowcache.").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

 private:
  using LruList = std::list<std::pair<FlowCacheKey, FlowCacheEntry>>;

  bool enabled_ = false;
  std::size_t capacity_;
  std::uint64_t generation_ = 0;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<FlowCacheKey, LruList::iterator, FlowCacheKeyHash>
      map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  telemetry::Counter* t_hits_ = &telemetry::Counter::sink();
  telemetry::Counter* t_misses_ = &telemetry::Counter::sink();
  telemetry::Counter* t_stale_ = &telemetry::Counter::sink();
  telemetry::Counter* t_insertions_ = &telemetry::Counter::sink();
  telemetry::Counter* t_evictions_ = &telemetry::Counter::sink();
  telemetry::Counter* t_invalidations_ = &telemetry::Counter::sink();
};

}  // namespace prism::overlay
